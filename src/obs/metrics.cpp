#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace ep::obs {

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto headOk = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!headOk(name[0])) return false;
  for (char c : name) {
    if (!headOk(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// Label names: like metric names but without ':' (Prometheus reserves
// "__"-prefixed names for internal use).
bool validLabelName(const std::string& name) {
  if (name.empty()) return false;
  auto headOk = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!headOk(name[0])) return false;
  for (char c : name) {
    if (!headOk(c) && !(c >= '0' && c <= '9')) return false;
  }
  return name.size() < 2 || name[0] != '_' || name[1] != '_';
}

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

// 0.0.4 exposition: inside a label value, backslash, double-quote and
// line-feed must be escaped.
void appendEscapedLabelValue(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// HELP text escapes backslash and line-feed only.
void appendEscapedHelp(std::string& out, const std::string& help) {
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// `{k1="v1",k2="v2"}` with escaped values, plus an optional trailing
// le="..." for histogram buckets; empty for an unlabelled series with
// no extra label.
void appendLabelBlock(std::string& out, const Labels& labels,
                      const char* leBound = nullptr) {
  if (labels.empty() && leBound == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    appendEscapedLabelValue(out, v);
    out += '"';
  }
  if (leBound != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += leBound;
    out += '"';
  }
  out += '}';
}

// Canonical key of a child series within its family.
std::string labelsKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
    }
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucketValue(std::size_t i) const {
  if (i > bounds_.size()) {
    throw std::invalid_argument("histogram bucket index out of range");
  }
  return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

Registry::Entry& Registry::find(const std::string& name, Kind kind,
                                const std::string& help,
                                const Labels& labels) {
  if (!validMetricName(name)) {
    throw std::invalid_argument("invalid metric name: \"" + name + "\"");
  }
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!validLabelName(k)) {
      throw std::invalid_argument("invalid label name: \"" + k + "\"");
    }
  }
  Family* family = nullptr;
  if (auto it = byName_.find(name); it != byName_.end()) {
    family = it->second;
    if (family->kind != kind) {
      throw std::invalid_argument("metric \"" + name +
                                  "\" already registered with another kind");
    }
  } else {
    auto fam = std::make_unique<Family>();
    fam->kind = kind;
    fam->name = name;
    fam->help = help;
    family = fam.get();
    byName_[name] = family;
    families_.push_back(std::move(fam));
  }
  const std::string key = labelsKey(labels);
  for (const auto& e : family->entries) {
    if (labelsKey(e->labels) == key) return *e;
  }
  auto entry = std::make_unique<Entry>();
  entry->labels = labels;
  Entry& ref = *entry;
  family->entries.push_back(std::move(entry));
  return ref;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Counter, help, labels);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

DoubleCounter& Registry::doubleCounter(const std::string& name,
                                       const std::string& help,
                                       const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::DoubleCounter, help, labels);
  if (!e.doubleCounter) e.doubleCounter = std::make_unique<DoubleCounter>();
  return *e.doubleCounter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Gauge, help, labels);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> upperBounds,
                               const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Histogram, help, labels);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upperBounds));
  } else if (e.histogram->upperBounds() != upperBounds) {
    throw std::invalid_argument("histogram \"" + name +
                                "\" already registered with other bounds");
  }
  return *e.histogram;
}

std::string Registry::renderPrometheus() const {
  std::lock_guard lk(mu_);
  std::string out;
  for (const auto& f : families_) {
    out += "# HELP " + f->name + " ";
    appendEscapedHelp(out, f->help);
    out += "\n# TYPE " + f->name + " ";
    switch (f->kind) {
      case Kind::Counter:
      case Kind::DoubleCounter: out += "counter\n"; break;
      case Kind::Gauge: out += "gauge\n"; break;
      case Kind::Histogram: out += "histogram\n"; break;
    }
    for (const auto& e : f->entries) {
      switch (f->kind) {
        case Kind::Counter:
          out += f->name;
          appendLabelBlock(out, e->labels);
          out += " " + std::to_string(e->counter->value()) + "\n";
          break;
        case Kind::DoubleCounter:
          out += f->name;
          appendLabelBlock(out, e->labels);
          out += " ";
          appendDouble(out, e->doubleCounter->value());
          out += "\n";
          break;
        case Kind::Gauge:
          out += f->name;
          appendLabelBlock(out, e->labels);
          out += " " + std::to_string(e->gauge->value()) + "\n";
          break;
        case Kind::Histogram: {
          const Histogram& h = *e->histogram;
          std::uint64_t cum = 0;
          char bound[40];
          for (std::size_t i = 0; i < h.upperBounds().size(); ++i) {
            cum += h.bucketValue(i);
            std::snprintf(bound, sizeof bound, "%.10g", h.upperBounds()[i]);
            out += f->name + "_bucket";
            appendLabelBlock(out, e->labels, bound);
            out += " " + std::to_string(cum) + "\n";
          }
          cum += h.bucketValue(h.upperBounds().size());
          out += f->name + "_bucket";
          appendLabelBlock(out, e->labels, "+Inf");
          out += " " + std::to_string(cum) + "\n";
          out += f->name + "_sum";
          appendLabelBlock(out, e->labels);
          out += " ";
          appendDouble(out, h.sum());
          out += "\n";
          out += f->name + "_count";
          appendLabelBlock(out, e->labels);
          out += " " + std::to_string(cum) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: metric
                                        // references outlive main()
  return *r;
}

}  // namespace ep::obs
