#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace ep::obs {

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto headOk = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!headOk(name[0])) return false;
  for (char c : name) {
    if (!headOk(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
    }
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucketValue(std::size_t i) const {
  if (i > bounds_.size()) {
    throw std::invalid_argument("histogram bucket index out of range");
  }
  return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

Registry::Entry& Registry::find(const std::string& name, Kind kind,
                                const std::string& help) {
  if (!validMetricName(name)) {
    throw std::invalid_argument("invalid metric name: \"" + name + "\"");
  }
  if (auto it = byName_.find(name); it != byName_.end()) {
    if (it->second->kind != kind) {
      throw std::invalid_argument("metric \"" + name +
                                  "\" already registered with another kind");
    }
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->help = help;
  Entry& ref = *entry;
  byName_[name] = entry.get();
  entries_.push_back(std::move(entry));
  return ref;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Counter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Gauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> upperBounds) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Histogram, help);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upperBounds));
  } else if (e.histogram->upperBounds() != upperBounds) {
    throw std::invalid_argument("histogram \"" + name +
                                "\" already registered with other bounds");
  }
  return *e.histogram;
}

std::string Registry::renderPrometheus() const {
  std::lock_guard lk(mu_);
  std::string out;
  for (const auto& e : entries_) {
    out += "# HELP " + e->name + " " + e->help + "\n";
    out += "# TYPE " + e->name + " ";
    switch (e->kind) {
      case Kind::Counter:
        out += "counter\n";
        out += e->name + " " + std::to_string(e->counter->value()) + "\n";
        break;
      case Kind::Gauge:
        out += "gauge\n";
        out += e->name + " " + std::to_string(e->gauge->value()) + "\n";
        break;
      case Kind::Histogram: {
        out += "histogram\n";
        const Histogram& h = *e->histogram;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.upperBounds().size(); ++i) {
          cum += h.bucketValue(i);
          out += e->name + "_bucket{le=\"";
          appendDouble(out, h.upperBounds()[i]);
          out += "\"} " + std::to_string(cum) + "\n";
        }
        cum += h.bucketValue(h.upperBounds().size());
        out += e->name + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
        out += e->name + "_sum ";
        appendDouble(out, h.sum());
        out += "\n";
        out += e->name + "_count " + std::to_string(cum) + "\n";
        break;
      }
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: metric
                                        // references outlive main()
  return *r;
}

}  // namespace ep::obs
