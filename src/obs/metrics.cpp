#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

namespace ep::obs {

namespace {

// Recency order for exemplars across every histogram in the process:
// federation keeps the exemplar with the larger seq, so "newer wins"
// holds across shards living in one address space.
std::atomic<std::uint64_t> gExemplarSeq{0};

std::string formatHexId(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(id));
  return buf;
}

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto headOk = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!headOk(name[0])) return false;
  for (char c : name) {
    if (!headOk(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// Label names: like metric names but without ':' (Prometheus reserves
// "__"-prefixed names for internal use).
bool validLabelName(const std::string& name) {
  if (name.empty()) return false;
  auto headOk = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!headOk(name[0])) return false;
  for (char c : name) {
    if (!headOk(c) && !(c >= '0' && c <= '9')) return false;
  }
  return name.size() < 2 || name[0] != '_' || name[1] != '_';
}

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

// 0.0.4 exposition: inside a label value, backslash, double-quote and
// line-feed must be escaped.
void appendEscapedLabelValue(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// HELP text escapes backslash and line-feed only.
void appendEscapedHelp(std::string& out, const std::string& help) {
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// `{k1="v1",k2="v2"}` with escaped values, plus an optional trailing
// le="..." for histogram buckets; empty for an unlabelled series with
// no extra label.
void appendLabelBlock(std::string& out, const Labels& labels,
                      const char* leBound = nullptr) {
  if (labels.empty() && leBound == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    appendEscapedLabelValue(out, v);
    out += '"';
  }
  if (leBound != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += leBound;
    out += '"';
  }
  out += '}';
}

// Canonical key of a child series within its family.
std::string labelsKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      exemplarSlots_(new ExemplarSlot[bounds_.size() + 1]) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
    }
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::size_t Histogram::bucketIndexFor(double v) const {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  return i;
}

void Histogram::observe(double v) {
  const std::size_t i = bucketIndexFor(v);
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v, std::uint64_t exemplarTraceId) {
  observe(v);
  if (exemplarTraceId != 0) {
    recordExemplar(bucketIndexFor(v), v, exemplarTraceId);
  }
}

void Histogram::recordExemplar(std::size_t bucket, double v,
                               std::uint64_t traceId) {
  ExemplarSlot& s = exemplarSlots_[bucket];
  std::uint32_t ver = s.version.load(std::memory_order_relaxed);
  if (ver & 1u) return;  // another writer owns the slot; skip
  if (!s.version.compare_exchange_strong(ver, ver + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    return;  // lost the claim; the winner's exemplar is as good
  }
  s.traceId.store(traceId, std::memory_order_relaxed);
  s.valueBits.store(std::bit_cast<std::uint64_t>(v),
                    std::memory_order_relaxed);
  s.seq.store(gExemplarSeq.fetch_add(1, std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  s.version.store(ver + 2, std::memory_order_release);
}

Exemplar Histogram::exemplar(std::size_t i) const {
  if (i > bounds_.size()) {
    throw std::invalid_argument("histogram bucket index out of range");
  }
  const ExemplarSlot& s = exemplarSlots_[i];
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint32_t v0 = s.version.load(std::memory_order_acquire);
    if (v0 & 1u) continue;  // writer mid-update
    Exemplar e;
    e.traceId = s.traceId.load(std::memory_order_relaxed);
    const std::uint64_t bits = s.valueBits.load(std::memory_order_relaxed);
    e.seq = s.seq.load(std::memory_order_relaxed);
    if (s.version.load(std::memory_order_acquire) == v0) {
      e.value = std::bit_cast<double>(bits);
      return e;
    }
  }
  return {};  // writers kept winning; report absent rather than torn
}

std::uint64_t Histogram::bucketValue(std::size_t i) const {
  if (i > bounds_.size()) {
    throw std::invalid_argument("histogram bucket index out of range");
  }
  return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

Registry::Entry& Registry::find(const std::string& name, Kind kind,
                                const std::string& help,
                                const Labels& labels) {
  if (!validMetricName(name)) {
    throw std::invalid_argument("invalid metric name: \"" + name + "\"");
  }
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!validLabelName(k)) {
      throw std::invalid_argument("invalid label name: \"" + k + "\"");
    }
  }
  Family* family = nullptr;
  if (auto it = byName_.find(name); it != byName_.end()) {
    family = it->second;
    if (family->kind != kind) {
      throw std::invalid_argument("metric \"" + name +
                                  "\" already registered with another kind");
    }
  } else {
    auto fam = std::make_unique<Family>();
    fam->kind = kind;
    fam->name = name;
    fam->help = help;
    family = fam.get();
    byName_[name] = family;
    families_.push_back(std::move(fam));
  }
  const std::string key = labelsKey(labels);
  for (const auto& e : family->entries) {
    if (labelsKey(e->labels) == key) return *e;
  }
  auto entry = std::make_unique<Entry>();
  entry->labels = labels;
  Entry& ref = *entry;
  family->entries.push_back(std::move(entry));
  return ref;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Counter, help, labels);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

DoubleCounter& Registry::doubleCounter(const std::string& name,
                                       const std::string& help,
                                       const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::DoubleCounter, help, labels);
  if (!e.doubleCounter) e.doubleCounter = std::make_unique<DoubleCounter>();
  return *e.doubleCounter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Gauge, help, labels);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> upperBounds,
                               const Labels& labels) {
  std::lock_guard lk(mu_);
  Entry& e = find(name, Kind::Histogram, help, labels);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upperBounds));
  } else if (e.histogram->upperBounds() != upperBounds) {
    throw std::invalid_argument("histogram \"" + name +
                                "\" already registered with other bounds");
  }
  return *e.histogram;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard lk(mu_);
  RegistrySnapshot snap;
  snap.families.reserve(families_.size());
  for (const auto& f : families_) {
    FamilySnapshot fam;
    fam.kind = f->kind;
    fam.name = f->name;
    fam.help = f->help;
    fam.series.reserve(f->entries.size());
    for (const auto& e : f->entries) {
      SeriesSnapshot s;
      s.labels = e->labels;
      switch (f->kind) {
        case Kind::Counter:
          if (!e->counter) continue;
          s.counterValue = e->counter->value();
          break;
        case Kind::DoubleCounter:
          if (!e->doubleCounter) continue;
          s.doubleValue = e->doubleCounter->value();
          break;
        case Kind::Gauge:
          if (!e->gauge) continue;
          s.gaugeValue = e->gauge->value();
          break;
        case Kind::Histogram: {
          if (!e->histogram) continue;
          const Histogram& h = *e->histogram;
          s.bounds = h.upperBounds();
          s.buckets.resize(h.bucketCount());
          s.exemplars.resize(h.bucketCount());
          bool anyExemplar = false;
          for (std::size_t i = 0; i < h.bucketCount(); ++i) {
            s.buckets[i] = h.bucketValue(i);
            const Exemplar ex = h.exemplar(i);
            if (ex.seq != 0) {
              anyExemplar = true;
              s.exemplars[i] = {formatHexId(ex.traceId), ex.value, ex.seq};
            }
          }
          if (!anyExemplar) s.exemplars.clear();
          s.sum = h.sum();
          break;
        }
      }
      fam.series.push_back(std::move(s));
    }
    snap.families.push_back(std::move(fam));
  }
  return snap;
}

void RegistrySnapshot::append(RegistrySnapshot other) {
  for (auto& fam : other.families) {
    FamilySnapshot* dst = nullptr;
    for (auto& f : families) {
      if (f.name == fam.name) {
        dst = &f;
        break;
      }
    }
    if (dst == nullptr) {
      families.push_back(std::move(fam));
      continue;
    }
    if (dst->kind != fam.kind) {
      throw std::invalid_argument("snapshot append: family \"" + fam.name +
                                  "\" has conflicting kinds");
    }
    for (auto& s : fam.series) dst->series.push_back(std::move(s));
  }
}

SeriesSnapshot mergeHistogramSeries(const SeriesSnapshot& a,
                                    const SeriesSnapshot& b) {
  if (a.bounds != b.bounds || a.buckets.size() != b.buckets.size()) {
    throw std::invalid_argument(
        "histogram merge: mismatched bucket bounds");
  }
  SeriesSnapshot out = a;
  for (std::size_t i = 0; i < out.buckets.size(); ++i) {
    out.buckets[i] += b.buckets[i];
  }
  out.sum += b.sum;
  if (!a.exemplars.empty() || !b.exemplars.empty()) {
    out.exemplars.assign(out.buckets.size(), {});
    auto at = [](const std::vector<SnapshotExemplar>& v, std::size_t i) {
      return i < v.size() ? v[i] : SnapshotExemplar{};
    };
    for (std::size_t i = 0; i < out.buckets.size(); ++i) {
      const SnapshotExemplar ea = at(a.exemplars, i);
      const SnapshotExemplar eb = at(b.exemplars, i);
      out.exemplars[i] = eb.seq > ea.seq ? eb : ea;  // newer wins
    }
  }
  return out;
}

RegistrySnapshot mergeShardSnapshots(
    const std::vector<std::pair<std::string, RegistrySnapshot>>& shards) {
  RegistrySnapshot out;
  std::unordered_map<std::string, std::size_t> famIndex;
  for (const auto& [shardId, snap] : shards) {
    for (const auto& fam : snap.families) {
      FamilySnapshot* dst = nullptr;
      if (auto it = famIndex.find(fam.name); it != famIndex.end()) {
        dst = &out.families[it->second];
        if (dst->kind != fam.kind) {
          throw std::invalid_argument("federation: family \"" + fam.name +
                                      "\" has conflicting kinds");
        }
      } else {
        famIndex.emplace(fam.name, out.families.size());
        out.families.push_back({fam.kind, fam.name, fam.help, {}});
        dst = &out.families.back();
      }
      for (const auto& s : fam.series) {
        if (fam.kind == MetricKind::Gauge) {
          // Instantaneous levels stay per shard, distinguished by an
          // appended shard label.
          SeriesSnapshot g = s;
          g.labels.emplace_back("shard", shardId);
          dst->series.push_back(std::move(g));
          continue;
        }
        SeriesSnapshot* match = nullptr;
        const std::string key = labelsKey(s.labels);
        for (auto& d : dst->series) {
          if (labelsKey(d.labels) == key) {
            match = &d;
            break;
          }
        }
        if (match == nullptr) {
          dst->series.push_back(s);
          continue;
        }
        switch (fam.kind) {
          case MetricKind::Counter: match->counterValue += s.counterValue; break;
          case MetricKind::DoubleCounter: match->doubleValue += s.doubleValue; break;
          case MetricKind::Histogram:
            *match = mergeHistogramSeries(*match, s);
            break;
          case MetricKind::Gauge: break;  // handled above
        }
      }
    }
  }
  return out;
}

namespace {

// OpenMetrics counter families drop a `_total` suffix in the metadata
// and re-attach it to every sample.
std::string openMetricsBaseName(const FamilySnapshot& f) {
  constexpr const char* kSuffix = "_total";
  constexpr std::size_t kSuffixLen = 6;
  if ((f.kind == MetricKind::Counter || f.kind == MetricKind::DoubleCounter) &&
      f.name.size() > kSuffixLen &&
      f.name.compare(f.name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
    return f.name.substr(0, f.name.size() - kSuffixLen);
  }
  return f.name;
}

void appendExemplar(std::string& out, const SnapshotExemplar& ex) {
  out += " # {trace_id=\"";
  appendEscapedLabelValue(out, ex.traceId);
  out += "\"} ";
  appendDouble(out, ex.value);
}

}  // namespace

std::string renderExposition(const RegistrySnapshot& snap,
                             ExpositionFormat format) {
  const bool om = format == ExpositionFormat::OpenMetrics100;
  std::string out;
  for (const auto& f : snap.families) {
    const bool isCounter = f.kind == MetricKind::Counter ||
                           f.kind == MetricKind::DoubleCounter;
    const std::string metaName = om ? openMetricsBaseName(f) : f.name;
    const std::string sampleName =
        om && isCounter ? metaName + "_total" : f.name;
    out += "# HELP ";
    out += metaName;
    out += ' ';
    appendEscapedHelp(out, f.help);
    out += "\n# TYPE ";
    out += metaName;
    out += ' ';
    switch (f.kind) {
      case MetricKind::Counter:
      case MetricKind::DoubleCounter: out += "counter\n"; break;
      case MetricKind::Gauge: out += "gauge\n"; break;
      case MetricKind::Histogram: out += "histogram\n"; break;
    }
    for (const auto& s : f.series) {
      switch (f.kind) {
        case MetricKind::Counter:
          out += sampleName;
          appendLabelBlock(out, s.labels);
          out += ' ';
          out += std::to_string(s.counterValue);
          out += '\n';
          break;
        case MetricKind::DoubleCounter:
          out += sampleName;
          appendLabelBlock(out, s.labels);
          out += " ";
          appendDouble(out, s.doubleValue);
          out += "\n";
          break;
        case MetricKind::Gauge:
          out += sampleName;
          appendLabelBlock(out, s.labels);
          out += ' ';
          out += std::to_string(s.gaugeValue);
          out += '\n';
          break;
        case MetricKind::Histogram: {
          std::uint64_t cum = 0;
          char bound[40];
          auto exemplarAt = [&](std::size_t i) {
            return i < s.exemplars.size() ? s.exemplars[i]
                                          : SnapshotExemplar{};
          };
          for (std::size_t i = 0; i < s.bounds.size(); ++i) {
            cum += i < s.buckets.size() ? s.buckets[i] : 0;
            std::snprintf(bound, sizeof bound, "%.10g", s.bounds[i]);
            out += sampleName + "_bucket";
            appendLabelBlock(out, s.labels, bound);
            out += ' ';
            out += std::to_string(cum);
            if (om) {
              const SnapshotExemplar ex = exemplarAt(i);
              if (ex.seq != 0) appendExemplar(out, ex);
            }
            out += "\n";
          }
          if (s.buckets.size() > s.bounds.size()) {
            cum += s.buckets[s.bounds.size()];
          }
          out += sampleName + "_bucket";
          appendLabelBlock(out, s.labels, "+Inf");
          out += ' ';
          out += std::to_string(cum);
          if (om) {
            const SnapshotExemplar ex = exemplarAt(s.bounds.size());
            if (ex.seq != 0) appendExemplar(out, ex);
          }
          out += "\n";
          out += sampleName + "_sum";
          appendLabelBlock(out, s.labels);
          out += " ";
          appendDouble(out, s.sum);
          out += "\n";
          out += sampleName + "_count";
          appendLabelBlock(out, s.labels);
          out += ' ';
          out += std::to_string(cum);
          out += '\n';
          break;
        }
      }
    }
  }
  if (om) out += "# EOF\n";
  return out;
}

std::string Registry::renderPrometheus() const {
  return renderExposition(snapshot(), ExpositionFormat::Prometheus004);
}

std::string Registry::renderOpenMetrics() const {
  return renderExposition(snapshot(), ExpositionFormat::OpenMetrics100);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: metric
                                        // references outlive main()
  static bool stamped = (registerBuildInfo(*r), true);
  (void)stamped;
  return *r;
}

// Build identity baked in by src/obs/CMakeLists.txt at configure time.
#ifndef EP_BUILD_GIT_HASH
#define EP_BUILD_GIT_HASH "unknown"
#endif
#ifndef EP_BUILD_TYPE
#define EP_BUILD_TYPE "unspecified"
#endif
#ifndef EP_BUILD_COMPILER
#define EP_BUILD_COMPILER "unknown"
#endif

void registerBuildInfo(Registry& registry) {
  registry
      .gauge("ep_build_info", "Build identity (info-style: value always 1)",
             {{"git_hash", EP_BUILD_GIT_HASH},
              {"build_type", EP_BUILD_TYPE},
              {"compiler", EP_BUILD_COMPILER}})
      .set(1);
}

}  // namespace ep::obs
