#include "obs/profiler.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <utility>

// Older glibc spells the SIGEV_THREAD_ID target field only through the
// union member; the kernel ABI is the same either way.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace ep::obs {

namespace {

// The calling thread's registration, read by the SIGPROF handler.
// void* because ThreadState is private to Profiler; only
// registerCurrentThread / unregisterCurrentThread write it.
thread_local void* tlsThreadState = nullptr;

// Unregisters at thread exit so a dead thread's timer can never fire
// into freed TLS.  Function-local thread_local: constructed on first
// registration, destroyed during thread teardown (the shadow stack and
// trace context TLS are trivially destructible, so they outlive it).
struct ThreadUnregistrar {
  ~ThreadUnregistrar();
};

pid_t currentTid() {
  return static_cast<pid_t>(::syscall(SYS_gettid));
}

}  // namespace

const char* profileKindName(ProfileKind k) {
  return k == ProfileKind::Energy ? "energy" : "cpu";
}

Profiler& Profiler::global() {
  // Leaked on purpose: the SIGPROF disposition and late-exiting
  // threads may reach it after static destruction would have run.
  static Profiler* p = new Profiler();
  return *p;
}

ThreadUnregistrar::~ThreadUnregistrar() {
  Profiler::global().unregisterCurrentThread();
}

void Profiler::sigprofHandler(int /*signo*/, siginfo_t* /*info*/,
                              void* /*uctx*/) {
  // Async-signal-safe by construction: TLS reads, relaxed atomics and
  // plain stores into a preallocated ring.  No locks, no allocation,
  // no library calls; errno preserved for the interrupted code.
  const int savedErrno = errno;
  auto* st = static_cast<ThreadState*>(tlsThreadState);
  if (st != nullptr && !st->ring.slots.empty() &&
      prof_detail::gProfilerArmed.load(std::memory_order_relaxed)) {
    SampleRing& ring = st->ring;
    const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
    const std::uint64_t t = ring.tail.load(std::memory_order_acquire);
    if (h - t >= ring.slots.size()) {
      ring.dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      RawSample& s = ring.slots[h % ring.slots.size()];
      int depth = st->stack->depth.load(std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_acquire);
      if (depth < 0) depth = 0;
      if (depth > prof_detail::kMaxProfileFrames) {
        depth = prof_detail::kMaxProfileFrames;
      }
      for (int i = 0; i < depth; ++i) s.frames[i] = st->stack->frames[i];
      s.depth = depth;
      s.clipped = depth == prof_detail::kMaxProfileFrames ? 1 : 0;
      s.traceId = st->ctx->traceId;
      // Publish the filled slot before the head that exposes it to the
      // aggregator thread.
      ring.head.store(h + 1, std::memory_order_release);
    }
  }
  errno = savedErrno;
}

void Profiler::registerCurrentThread() {
  if (tlsThreadState != nullptr) return;
  auto st = std::make_shared<ThreadState>();
  st->stack = &prof_detail::tlsFrameStack();
  st->ctx = &detail::tlsContext();
  st->pthread = pthread_self();
  st->tid = currentTid();
  tlsThreadState = st.get();
  {
    std::lock_guard lk(mu_);
    threads_.push_back(st);
    if (running_.load(std::memory_order_acquire) && options_.cpuSampling) {
      st->ring.slots.resize(options_.ringCapacity);
      armThreadLocked(*st);
    }
  }
  thread_local ThreadUnregistrar guard;
  (void)guard;
}

void Profiler::unregisterCurrentThread() {
  void* raw = tlsThreadState;
  if (raw == nullptr) return;
  tlsThreadState = nullptr;
  // The handler must observe the null before the timer dies (both are
  // same-thread effects; the fence stops compiler reordering).
  std::atomic_signal_fence(std::memory_order_seq_cst);
  std::lock_guard lk(mu_);
  for (auto& st : threads_) {
    if (st.get() == raw) {
      disarmThreadLocked(*st);
      st->retired.store(true, std::memory_order_release);
      break;
    }
  }
}

std::size_t Profiler::registeredThreads() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& st : threads_) {
    if (!st->retired.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void Profiler::armThreadLocked(ThreadState& st) {
  if (st.timerArmed || st.retired.load(std::memory_order_acquire)) return;
  clockid_t clock{};
  // Per-thread CPU clock: the timer advances only while this thread
  // runs, so samples-per-thread is proportional to CPU burned and idle
  // threads are free.  Fails (and is skipped) for a thread that died
  // between registration and arming.
  if (pthread_getcpuclockid(st.pthread, &clock) != 0) return;
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = st.tid;
  if (timer_create(clock, &sev, &st.timer) != 0) return;
  const std::uint64_t us = options_.samplePeriodUs;
  struct itimerspec its {};
  its.it_interval.tv_sec = static_cast<time_t>(us / 1000000);
  its.it_interval.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  its.it_value = its.it_interval;
  if (timer_settime(st.timer, 0, &its, nullptr) != 0) {
    timer_delete(st.timer);
    return;
  }
  st.timerArmed = true;
}

void Profiler::disarmThreadLocked(ThreadState& st) {
  if (!st.timerArmed) return;
  timer_delete(st.timer);
  st.timerArmed = false;
}

bool Profiler::start(const ProfilerOptions& options) {
  ProfilerOptions opts = options;
  opts.samplePeriodUs = std::max<std::uint64_t>(100, opts.samplePeriodUs);
  opts.ringCapacity = std::max<std::size_t>(16, opts.ringCapacity);
  opts.aggregateIntervalMs =
      std::max<std::uint64_t>(1, opts.aggregateIntervalMs);
  opts.maxTraceSlices = std::max<std::size_t>(16, opts.maxTraceSlices);
  {
    // storeMu_ strictly before mu_ (the aggregator's drain order).
    std::lock_guard slk(storeMu_);
    std::lock_guard lk(mu_);
    if (running_.load(std::memory_order_acquire)) return false;
    options_ = opts;
    maxTraceSlices_ = opts.maxTraceSlices;
    cpuSampleWeight_ = static_cast<double>(opts.samplePeriodUs) * 1e-6;
    if (opts.cpuSampling) {
      periodUs_ = opts.samplePeriodUs;
      struct sigaction sa {};
      sa.sa_sigaction = &Profiler::sigprofHandler;
      sa.sa_flags = SA_RESTART | SA_SIGINFO;
      sigemptyset(&sa.sa_mask);
      sigaction(SIGPROF, &sa, nullptr);
      for (auto& st : threads_) {
        if (st->retired.load(std::memory_order_acquire)) continue;
        if (st->ring.slots.size() != opts.ringCapacity) {
          // Safe to resize: no timer is armed yet, so no producer.
          st->ring.slots.resize(opts.ringCapacity);
        }
        armThreadLocked(*st);
      }
    }
    running_.store(true, std::memory_order_release);
    prof_detail::gProfilerArmed.store(true, std::memory_order_relaxed);
  }
  {
    std::lock_guard alk(aggMu_);
    stopAggregator_ = false;
  }
  aggregator_ = std::thread([this] { aggregatorLoop(); });
  return true;
}

void Profiler::stop() {
  {
    std::lock_guard lk(mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    prof_detail::gProfilerArmed.store(false, std::memory_order_relaxed);
    for (auto& st : threads_) disarmThreadLocked(*st);
    running_.store(false, std::memory_order_release);
  }
  {
    std::lock_guard alk(aggMu_);
    stopAggregator_ = true;
  }
  aggCv_.notify_all();
  if (aggregator_.joinable()) aggregator_.join();
  // Final drain so a stop-then-snapshot sees every sample taken.
  std::lock_guard slk(storeMu_);
  drainRings();
}

void Profiler::clear() {
  std::lock_guard slk(storeMu_);
  drainRings();  // do not let pre-clear samples leak into the next window
  cpu_ = Store{};
  energy_ = Store{};
  truncated_ = 0;
  dropped_ = 0;
}

void Profiler::aggregatorLoop() {
  for (;;) {
    {
      std::unique_lock alk(aggMu_);
      aggCv_.wait_for(alk, std::chrono::milliseconds(
                               options_.aggregateIntervalMs),
                      [this] { return stopAggregator_; });
      if (stopAggregator_) return;
    }
    std::lock_guard slk(storeMu_);
    drainRings();
  }
}

void Profiler::drainRings() {
  std::vector<std::shared_ptr<ThreadState>> copy;
  {
    std::lock_guard lk(mu_);
    copy = threads_;
  }
  for (const auto& st : copy) {
    SampleRing& ring = st->ring;
    if (ring.slots.empty()) continue;
    std::uint64_t t = ring.tail.load(std::memory_order_relaxed);
    const std::uint64_t h = ring.head.load(std::memory_order_acquire);
    while (t != h) {
      const RawSample& s = ring.slots[t % ring.slots.size()];
      foldSample(cpu_, s.frames, s.depth, s.traceId, cpuSampleWeight_,
                 s.clipped != 0);
      ++t;
    }
    ring.tail.store(t, std::memory_order_release);
    dropped_ += ring.dropped.exchange(0, std::memory_order_relaxed);
  }
  // Prune retired threads whose rings are now empty: their producers
  // are gone (timer deleted before retirement), so this is final.
  std::lock_guard lk(mu_);
  threads_.erase(
      std::remove_if(threads_.begin(), threads_.end(),
                     [](const std::shared_ptr<ThreadState>& st) {
                       return st->retired.load(std::memory_order_acquire) &&
                              st->ring.head.load(std::memory_order_acquire) ==
                                  st->ring.tail.load(std::memory_order_acquire);
                     }),
      threads_.end());
}

void Profiler::foldSample(Store& store, const char* const* frames, int depth,
                          std::uint64_t traceId, double weight, bool clipped) {
  TrieNode* node = &store.root;
  if (depth <= 0) {
    // CPU burned outside every span and label: keep it visible instead
    // of silently widening labeled frames.
    auto& child = node->children["(unattributed)"];
    if (!child) child = std::make_unique<TrieNode>();
    node = child.get();
  } else {
    for (int i = 0; i < depth; ++i) {
      const char* f = frames[i] != nullptr ? frames[i] : "(null)";
      auto& child = node->children[f];
      if (!child) child = std::make_unique<TrieNode>();
      node = child.get();
    }
  }
  node->samples += 1;
  node->weight += weight;
  store.samples += 1;
  store.totalWeight += weight;
  if (clipped) ++truncated_;

  std::uint64_t sliceId = traceId;
  auto it = store.traces.find(sliceId);
  if (it == store.traces.end() && sliceId != 0 &&
      store.traces.size() >= maxTraceSlices_) {
    sliceId = 0;  // overflow traces fold into the untraced slice
    it = store.traces.find(sliceId);
  }
  if (it == store.traces.end()) {
    it = store.traces.emplace(sliceId, TraceSlice{sliceId, 0, 0.0}).first;
  }
  it->second.samples += 1;
  it->second.weight += weight;
}

void Profiler::recordEnergySample(double joules, std::uint64_t traceId) {
  if (!profilerArmed()) return;
  if (!(joules >= 0.0)) return;  // NaN / negative: a faulted window
  prof_detail::FrameStack& fs = prof_detail::tlsFrameStack();
  int depth = fs.depth.load(std::memory_order_relaxed);
  if (depth < 0) depth = 0;
  if (depth > prof_detail::kMaxProfileFrames) {
    depth = prof_detail::kMaxProfileFrames;
  }
  const char* frames[prof_detail::kMaxProfileFrames];
  for (int i = 0; i < depth; ++i) frames[i] = fs.frames[i];
  std::lock_guard slk(storeMu_);
  foldSample(energy_, frames, depth, traceId, joules,
             depth == prof_detail::kMaxProfileFrames);
}

ProfileSnapshot Profiler::snapshotLocked(const Store& store,
                                         ProfileKind kind) const {
  ProfileSnapshot snap;
  snap.kind = kind;
  snap.samplePeriodUs = kind == ProfileKind::Cpu ? periodUs_ : 0;
  snap.samples = store.samples;
  snap.totalWeight = store.totalWeight;
  snap.dropped = kind == ProfileKind::Cpu ? dropped_ : 0;
  snap.truncated = truncated_;

  // Flatten the trie depth-first into collapsed entries (self weight
  // only; inclusive weights are recovered by prefix summation in the
  // export layer).
  std::vector<std::pair<const TrieNode*, bool>> work;
  std::vector<std::string> path;
  struct Frame {
    const TrieNode* node;
    std::map<std::string, std::unique_ptr<TrieNode>>::const_iterator it;
  };
  std::vector<Frame> stack;
  stack.push_back({&store.root, store.root.children.begin()});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.it == top.node->children.end()) {
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const std::string& name = top.it->first;
    const TrieNode* child = top.it->second.get();
    ++top.it;
    path.push_back(name);
    if (child->samples > 0 || child->weight > 0.0) {
      ProfileEntry e;
      e.stack = path;
      e.samples = child->samples;
      e.weight = child->weight;
      snap.entries.push_back(std::move(e));
    }
    stack.push_back({child, child->children.begin()});
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.stack < b.stack;
            });

  snap.traces.reserve(store.traces.size());
  for (const auto& [id, slice] : store.traces) snap.traces.push_back(slice);
  std::sort(snap.traces.begin(), snap.traces.end(),
            [](const TraceSlice& a, const TraceSlice& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.traceId < b.traceId;
            });
  return snap;
}

ProfileSnapshot Profiler::snapshot(ProfileKind kind) {
  std::lock_guard slk(storeMu_);
  drainRings();
  return snapshotLocked(kind == ProfileKind::Energy ? energy_ : cpu_, kind);
}

}  // namespace ep::obs
