#include "obs/trace.hpp"

#include <cstdio>
#include <unordered_map>

namespace ep::obs {

namespace {

std::uint64_t nextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void appendEscapedName(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
}

}  // namespace

Tracer::Tracer(std::size_t ringCapacity)
    : id_(nextTracerId()),
      epoch_(std::chrono::steady_clock::now()),
      ringCapacity_(ringCapacity == 0 ? 1 : ringCapacity) {}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // never destroyed: spans may still
                                    // finish during static teardown
  return *t;
}

std::uint64_t Tracer::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

detail::ThreadBuffer& Tracer::threadBuffer() {
  // Keyed by tracer id, not pointer: a test tracer destroyed and
  // reallocated at the same address must not inherit stale buffers.
  thread_local std::unordered_map<std::uint64_t,
                                  std::shared_ptr<detail::ThreadBuffer>>
      tlBuffers;
  auto& slot = tlBuffers[id_];
  if (!slot) {
    std::lock_guard lk(mu_);
    slot = std::make_shared<detail::ThreadBuffer>(nextTid_++, ringCapacity_);
    buffers_.push_back(slot);
  }
  return *slot;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  for (auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    b->ring.clear();
    b->next = 0;
    b->total = 0;
  }
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<TraceEvent> out;
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    out.insert(out.end(), b->ring.begin(), b->ring.end());
  }
  return out;
}

std::uint64_t Tracer::recordedCount() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    n += b->ring.size();
  }
  return n;
}

std::uint64_t Tracer::droppedCount() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    if (b->total > b->ring.size()) n += b->total - b->ring.size();
  }
  return n;
}

std::string Tracer::exportChromeTrace() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    appendEscapedName(out, e.name);
    out += "\",\"cat\":\"ep\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(e.startNs) / 1e3);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(e.durNs) / 1e3);
    out += buf;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ep::obs
