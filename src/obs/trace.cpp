#include "obs/trace.hpp"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace ep::obs {

namespace {

std::uint64_t nextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void appendEscapedName(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
}

void appendMicros(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  out += buf;
}

}  // namespace

std::uint64_t traceIdFromString(const std::string& s) {
  if (s.empty()) return 0;
  // Verbatim hex when it fits in 64 bits.
  if (s.size() <= 16) {
    std::uint64_t v = 0;
    bool hex = true;
    for (char c : s) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = 10 + (c - 'a');
      } else if (c >= 'A' && c <= 'F') {
        digit = 10 + (c - 'A');
      } else {
        hex = false;
        break;
      }
      v = (v << 4) | static_cast<std::uint64_t>(digit);
    }
    if (hex && v != 0) return v;
  }
  // FNV-1a over the raw bytes for everything else.
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

std::string formatTraceId(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

Tracer::Tracer(std::size_t ringCapacity)
    : id_(nextTracerId()),
      epoch_(std::chrono::steady_clock::now()),
      ringCapacity_(ringCapacity == 0 ? 1 : ringCapacity) {}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // never destroyed: spans may still
                                    // finish during static teardown
  return *t;
}

std::uint64_t Tracer::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

detail::ThreadBuffer& Tracer::threadBuffer() {
  // Keyed by tracer id, not pointer: a test tracer destroyed and
  // reallocated at the same address must not inherit stale buffers.
  thread_local std::unordered_map<std::uint64_t,
                                  std::shared_ptr<detail::ThreadBuffer>>
      tlBuffers;
  auto& slot = tlBuffers[id_];
  if (!slot) {
    std::lock_guard lk(mu_);
    slot = std::make_shared<detail::ThreadBuffer>(nextTid_++, ringCapacity_);
    buffers_.push_back(slot);
  }
  return *slot;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  for (auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    b->ring.clear();
    b->next = 0;
    b->total = 0;
  }
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<TraceEvent> out;
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    out.insert(out.end(), b->ring.begin(), b->ring.end());
  }
  return out;
}

std::uint64_t Tracer::recordedCount() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    n += b->ring.size();
  }
  return n;
}

std::uint64_t Tracer::droppedCount() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard blk(b->mu);
    if (b->total > b->ring.size()) n += b->total - b->ring.size();
  }
  return n;
}

std::string Tracer::exportChromeTrace() const {
  const std::vector<TraceEvent> events = snapshot();
  // Span id -> owning tid, for cross-thread flow edges.  A parent that
  // is still open (or already overwritten in its ring) is simply
  // absent: the complete event still carries "parent" for offline
  // analysis, only the Perfetto flow arrow is skipped.
  std::unordered_map<std::uint64_t, std::uint32_t> tidOfSpan;
  tidOfSpan.reserve(events.size());
  for (const auto& e : events) tidOfSpan[e.spanId] = e.tid;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };
  for (const auto& e : events) {
    sep();
    out += "{\"name\":\"";
    appendEscapedName(out, e.name);
    out += "\",\"cat\":\"ep\",\"ph\":\"X\",\"ts\":";
    appendMicros(out, e.startNs);
    out += ",\"dur\":";
    appendMicros(out, e.durNs);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"trace\":\"";
    out += formatTraceId(e.traceId);
    out += "\",\"span\":";
    out += std::to_string(e.spanId);
    out += ",\"parent\":";
    out += std::to_string(e.parentSpanId);
    out += '}';
    // Cross-thread parent: render the edge as a flow pair (start on
    // the parent's track, finish on ours, both at our open time).
    if (e.parentSpanId != 0) {
      const auto it = tidOfSpan.find(e.parentSpanId);
      if (it != tidOfSpan.end() && it->second != e.tid) {
        const std::string id = std::to_string(e.spanId);
        sep();
        out += "{\"name\":\"ctx\",\"cat\":\"ep\",\"ph\":\"s\",\"ts\":";
        appendMicros(out, e.startNs);
        out += ",\"pid\":1,\"tid\":" + std::to_string(it->second) +
               ",\"id\":" + id + '}';
        sep();
        out += "{\"name\":\"ctx\",\"cat\":\"ep\",\"ph\":\"f\",\"bp\":\"e\","
               "\"ts\":";
        appendMicros(out, e.startNs);
        out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
               ",\"id\":" + id + '}';
      }
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ep::obs
