// epobs flight recorder: a fixed-capacity, lock-free ring of
// structured anomaly events, built for the power-anomaly watchdog.
//
// Requirements that shaped the design:
//   * record() may be called from measurement worker threads while a
//     serve thread drains the ring for the {"op":"events"} wire op —
//     no locks on the record path, and a drain must never block a
//     recorder.
//   * TSan-clean by construction: the payload bytes are relaxed
//     atomics, and every read is validated against the slot's claim /
//     publish sequence numbers, so a torn (lapped) read is *rejected*,
//     never returned.
//   * Events are rare (anomalies, not samples), so a writer lapping
//     the ring twice around a stalled writer is effectively
//     impossible; if it ever happens the CAS claim fails and the event
//     is counted in dropped() instead of corrupting a slot.
//
// FlightEvent is a trivially-copyable POD with fixed char arrays so a
// byte-wise copy through atomics is well-defined.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace ep::obs {

struct FlightEvent {
  std::uint64_t seq = 0;     // global 1-based record order
  std::uint64_t timeNs = 0;  // tracer-epoch timestamp
  std::uint64_t traceId = 0; // request in scope when raised (0 = none)
  double value = 0.0;        // observed magnitude (watts, fraction, ...)
  double threshold = 0.0;    // configured limit it crossed
  char kind[24] = {};        // e.g. "constant_component"
  char scope[32] = {};       // device / platform label
  char message[96] = {};     // human-readable detail
};
static_assert(std::is_trivially_copyable_v<FlightEvent>,
              "FlightEvent must byte-copy through the atomic ring");

// Truncating, always-terminated copy into a FlightEvent char array.
template <std::size_t N>
void setFlightField(char (&dst)[N], const char* src) {
  std::size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < N; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

class FlightRecorder {
 public:
  // Capacity is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Record `e` (its seq field is assigned here).  Lock-free; on the
  // astronomically unlikely double-lap race the event is dropped and
  // counted instead of tearing a slot.
  void record(FlightEvent e);

  // Consistent copies of every event still in the ring with
  // seq > sinceSeq, in seq order.  Torn slots (a writer mid-copy) are
  // skipped; they reappear in a later snapshot once published.
  [[nodiscard]] std::vector<FlightEvent> snapshot(
      std::uint64_t sinceSeq = 0) const;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  // Events ever recorded (monotonic; the ring holds the newest).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> claim{0};    // seq a writer owns
    std::atomic<std::uint64_t> publish{0};  // seq fully written
    std::unique_ptr<std::atomic<unsigned char>[]> bytes;
  };

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// One line-delimited flat-JSON object per event (the body format of
// the {"op":"events"} wire response; parseable with the in-tree wire
// parser).
[[nodiscard]] std::string encodeFlightEventLine(const FlightEvent& e);
// Same, tagged with the shard the recorder belongs to (fleet-scope
// drains; a non-empty shard adds a "shard" field to the event line).
[[nodiscard]] std::string encodeFlightEventLine(const FlightEvent& e,
                                                const std::string& shard);

}  // namespace ep::obs
