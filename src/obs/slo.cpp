#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ep::obs {

namespace {

bool parseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  std::size_t parsed = 0;
  try {
    *out = std::stod(s, &parsed);
  } catch (const std::exception&) {
    return false;
  }
  return parsed == s.size();
}

std::vector<std::string> splitColon(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = s.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
}

}  // namespace

std::optional<SloSpec> parseSloSpec(const std::string& text,
                                    std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<SloSpec> {
    if (error != nullptr) *error = why + ": \"" + text + "\"";
    return std::nullopt;
  };
  SloSpec spec;
  std::string body = text;
  if (const std::size_t eq = body.find('='); eq != std::string::npos) {
    spec.name = body.substr(0, eq);
    body = body.substr(eq + 1);
    if (spec.name.empty()) return fail("empty SLO name");
  }
  const std::vector<std::string> parts = splitColon(body);
  if (parts.empty()) return fail("empty SLO spec");
  if (parts[0] == "latency") {
    spec.kind = SloSpec::Kind::LatencyQuantile;
    if (parts.size() != 3) {
      return fail("latency SLO wants latency:<thresholdMs>:<objective>");
    }
    if (!parseDouble(parts[1], &spec.latencyThresholdMs) ||
        !(spec.latencyThresholdMs > 0.0)) {
      return fail("bad latency threshold");
    }
    if (!parseDouble(parts[2], &spec.objective) || !(spec.objective > 0.0) ||
        !(spec.objective < 1.0)) {
      return fail("objective must be in (0,1)");
    }
  } else if (parts[0] == "energy") {
    spec.kind = SloSpec::Kind::EnergyPerRequest;
    if (spec.name == "latency") spec.name = "energy";
    if (parts.size() != 2) {
      return fail("energy SLO wants energy:<joulesPerRequest>");
    }
    if (!parseDouble(parts[1], &spec.joulesPerRequestBudget) ||
        !(spec.joulesPerRequestBudget > 0.0)) {
      return fail("bad joules-per-request budget");
    }
  } else {
    return fail("unknown SLO kind \"" + parts[0] + "\"");
  }
  return spec;
}

SloEngine::SloEngine(const TimeSeriesStore* store, std::vector<SloSpec> specs)
    : SloEngine(store, std::move(specs), Options{}) {}

SloEngine::SloEngine(const TimeSeriesStore* store, std::vector<SloSpec> specs,
                     Options options)
    : store_(store),
      options_(std::move(options)),
      recorder_(options_.recorderCapacity) {
  states_.reserve(specs.size());
  for (auto& spec : specs) {
    if (spec.windows.empty()) spec.windows = options_.defaultWindows;
    State st;
    st.last.name = spec.name;
    st.last.kind = spec.kind;
    st.spec = std::move(spec);
    states_.push_back(std::move(st));
  }
}

// Error-budget burn rate of one SLO over [fromNs, toNs].  Latency: the
// fraction of requests slower than the threshold, over the budget
// (1 - objective).  Energy: attributed J per completed request over
// the declared budget (burn 1.0 = spending exactly the budget).
double SloEngine::burnOver(const SloSpec& spec, std::int64_t fromNs,
                           std::int64_t toNs) const {
  if (spec.kind == SloSpec::Kind::LatencyQuantile) {
    const auto metas = store_->histogramsForFamily(spec.family);
    double total = 0.0;
    double good = 0.0;
    for (const HistogramMeta& meta : metas) {
      // Smallest bound covering the threshold; requests beyond the last
      // bound (the +Inf bucket) are always bad.
      std::size_t thresholdBucket = meta.bounds.size();
      for (std::size_t i = 0; i < meta.bounds.size(); ++i) {
        if (meta.bounds[i] >= spec.latencyThresholdMs) {
          thresholdBucket = i;
          break;
        }
      }
      auto delta = [&](const std::string& key) {
        const auto samples = store_->range(key, fromNs, toNs);
        return samples.size() >= 2
                   ? samples.back().value - samples.front().value
                   : 0.0;
      };
      total += delta(meta.countKey);
      if (thresholdBucket < meta.bounds.size()) {
        good += delta(meta.bucketKeys[thresholdBucket]);
      }
      // thresholdBucket == bounds.size(): threshold above every bound,
      // only the +Inf bucket covers it — everything counted is good.
      else {
        good += delta(meta.countKey);
      }
    }
    if (!(total > 0.0)) return 0.0;
    const double badFraction =
        std::max(0.0, (total - good)) / total;
    const double budget = std::max(1e-9, 1.0 - spec.objective);
    return badFraction / budget;
  }

  // EnergyPerRequest.
  auto familyDelta = [&](const std::string& family) {
    double sum = 0.0;
    for (const std::string& key : store_->keysForFamily(family)) {
      const auto samples = store_->range(key, fromNs, toNs);
      if (samples.size() >= 2) {
        sum += samples.back().value - samples.front().value;
      }
    }
    return sum;
  };
  const double joules = familyDelta(spec.energyFamily);
  const double requests = familyDelta(spec.requestsFamily);
  if (!(requests > 0.0)) return 0.0;
  const double jpr = std::max(0.0, joules) / requests;
  return jpr / spec.joulesPerRequestBudget;
}

void SloEngine::evaluate(std::int64_t nowNs) {
  std::lock_guard lk(mu_);
  for (State& st : states_) {
    SloStatus status;
    status.name = st.spec.name;
    status.kind = st.spec.kind;
    status.raisedCount = st.last.raisedCount;
    bool anyPairBurning = false;
    double worstThreshold = 0.0;
    for (const BurnWindow& w : st.spec.windows) {
      WindowBurn wb;
      wb.longMs = w.longMs;
      wb.shortMs = w.shortMs;
      wb.threshold = w.burnThreshold;
      wb.longBurn = burnOver(st.spec, nowNs - w.longMs * 1000000, nowNs);
      wb.shortBurn = burnOver(st.spec, nowNs - w.shortMs * 1000000, nowNs);
      status.worstBurn =
          std::max({status.worstBurn, wb.longBurn, wb.shortBurn});
      if (wb.longBurn >= w.burnThreshold && wb.shortBurn >= w.burnThreshold) {
        anyPairBurning = true;
        worstThreshold = w.burnThreshold;
      }
      status.windows.push_back(wb);
    }
    if (!st.last.burning) {
      status.burning = anyPairBurning;
    } else {
      // Hysteresis: stay burning until every window burn rate drops
      // below threshold * clearFraction.
      bool allClear = true;
      for (const WindowBurn& wb : status.windows) {
        if (std::max(wb.longBurn, wb.shortBurn) >=
            wb.threshold * options_.clearFraction) {
          allClear = false;
          break;
        }
      }
      status.burning = !allClear;
    }
    if (status.burning && !st.last.burning) {
      ++status.raisedCount;
      FlightEvent e;
      e.timeNs = static_cast<std::uint64_t>(nowNs);
      e.value = status.worstBurn;
      e.threshold = worstThreshold;
      setFlightField(e.kind, "slo_burn");
      setFlightField(e.scope, st.spec.name.c_str());
      char msg[sizeof e.message];
      std::snprintf(msg, sizeof msg,
                    "%s SLO burning at %.2fx the error-budget rate",
                    st.spec.kind == SloSpec::Kind::LatencyQuantile
                        ? "latency"
                        : "energy-budget",
                    status.worstBurn);
      setFlightField(e.message, msg);
      recorder_.record(e);
    } else if (!status.burning && st.last.burning) {
      FlightEvent e;
      e.timeNs = static_cast<std::uint64_t>(nowNs);
      e.value = status.worstBurn;
      e.threshold =
          st.spec.windows.empty() ? 0.0 : st.spec.windows[0].burnThreshold;
      setFlightField(e.kind, "slo_cleared");
      setFlightField(e.scope, st.spec.name.c_str());
      char msg[sizeof e.message];
      std::snprintf(msg, sizeof msg, "%s SLO recovered (burn %.2fx)",
                    st.spec.kind == SloSpec::Kind::LatencyQuantile
                        ? "latency"
                        : "energy-budget",
                    status.worstBurn);
      setFlightField(e.message, msg);
      recorder_.record(e);
    }
    st.last = std::move(status);
  }
}

std::vector<SloEngine::SloStatus> SloEngine::status() const {
  std::lock_guard lk(mu_);
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (const State& st : states_) out.push_back(st.last);
  return out;
}

std::size_t SloEngine::activeAlerts() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const State& st : states_) n += st.last.burning ? 1 : 0;
  return n;
}

}  // namespace ep::obs
