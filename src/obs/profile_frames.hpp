// epprof shadow frame stack: the async-signal-safe substrate of the
// continuous profiler (obs/profiler.hpp).
//
// Every profiled thread carries a fixed-size thread-local stack of
// frame labels (string literals or other storage outliving the
// thread).  obs::Span pushes its name here while the profiler is
// armed, so sampled stacks read as the span hierarchy the tracer
// already names ("serve/request;study/workload;kernel/dgemm;...");
// hot compute kernels add explicit ProfileFrame markers where no span
// exists.  The SIGPROF handler copies the stack verbatim — plain
// same-thread memory reads ordered by signal fences, no locks, no
// allocation — which is what makes sampling safe to leave always-on.
//
// Cost model: a gated push is one relaxed atomic load and a branch
// when the profiler is disarmed (the permanent state), two relaxed
// stores when armed.  Thread-lifetime root labels (pool worker, net
// event loop) push unconditionally so arming mid-run still sees them.
#pragma once

#include <atomic>
#include <cstdint>

namespace ep::obs {

namespace prof_detail {

// Deep enough for the span nesting the codebase actually produces
// (serve -> study -> app eval -> pool task -> kernel -> measure ->
// ci loop is 7); samples that would exceed it are clipped and counted.
inline constexpr int kMaxProfileFrames = 32;

// One process-wide flag: armed exactly while Profiler::start()..stop().
inline std::atomic<bool> gProfilerArmed{false};

struct FrameStack {
  const char* frames[kMaxProfileFrames];
  // Written by the owning thread, read by the SIGPROF handler on the
  // SAME thread: relaxed atomics plus signal fences give the handler a
  // consistent (depth, frames[0..depth)) view without locks.
  std::atomic<int> depth{0};
  std::atomic<std::uint64_t> truncated{0};  // pushes dropped at the cap
};

inline FrameStack& tlsFrameStack() noexcept {
  thread_local FrameStack fs;
  return fs;
}

// True push (unconditional).  Returns false when the stack is full so
// the caller knows not to pop.
inline bool pushFrame(const char* name) noexcept {
  FrameStack& fs = tlsFrameStack();
  const int d = fs.depth.load(std::memory_order_relaxed);
  if (d >= kMaxProfileFrames) {
    fs.truncated.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  fs.frames[d] = name;
  // The frame pointer must be visible before the depth that exposes it
  // to the signal handler.
  std::atomic_signal_fence(std::memory_order_release);
  fs.depth.store(d + 1, std::memory_order_relaxed);
  return true;
}

inline void popFrame() noexcept {
  FrameStack& fs = tlsFrameStack();
  fs.depth.store(fs.depth.load(std::memory_order_relaxed) - 1,
                 std::memory_order_relaxed);
}

}  // namespace prof_detail

// Whether the continuous profiler is currently armed (sampling +
// energy folding live).  One relaxed load; safe from any thread.
[[nodiscard]] inline bool profilerArmed() noexcept {
  return prof_detail::gProfilerArmed.load(std::memory_order_relaxed);
}

// Hot-path RAII frame: pushes only while the profiler is armed, so a
// disarmed process pays one load + branch.  `name` must be a string
// literal (or outlive every sample that can reference it).  Arming
// transitions mid-scope stay balanced: the destructor pops exactly
// when the constructor pushed.
class ProfileFrame {
 public:
  explicit ProfileFrame(const char* name) {
    if (name != nullptr && profilerArmed()) {
      pushed_ = prof_detail::pushFrame(name);
    }
  }
  ~ProfileFrame() {
    if (pushed_) prof_detail::popFrame();
  }

  ProfileFrame(const ProfileFrame&) = delete;
  ProfileFrame& operator=(const ProfileFrame&) = delete;

 private:
  bool pushed_ = false;
};

// Thread-lifetime root label (pool worker pools, net event threads,
// daemon main threads).  Pushes unconditionally — once per thread —
// so profiles armed later still slice by thread role / fleet shard.
class ProfileThreadLabel {
 public:
  explicit ProfileThreadLabel(const char* name) {
    if (name != nullptr && name[0] != '\0') {
      pushed_ = prof_detail::pushFrame(name);
    }
  }
  ~ProfileThreadLabel() {
    if (pushed_) prof_detail::popFrame();
  }

  ProfileThreadLabel(const ProfileThreadLabel&) = delete;
  ProfileThreadLabel& operator=(const ProfileThreadLabel&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace ep::obs
