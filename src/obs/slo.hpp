// SLO burn-rate engine over eptsdb history.
//
// The paper's bi-objective framing gives a serving fleet two axes that
// can regress independently: request latency and energy per request.
// An SloSpec declares an objective on one of them —
//
//   latency:   "fraction `objective` of requests complete within
//               `latencyThresholdMs`" (evaluated from the cumulative
//               bucket deltas of the latency histogram), or
//   energy:    "attributed joules per completed request stays within
//               `joulesPerRequestBudget`" (the PR 5 ledger counters) —
//
// and the engine evaluates it with the multi-window multi-burn-rate
// recipe: for each (longMs, shortMs, burnThreshold) window pair, the
// error budget burn rate is computed over both windows, and the SLO is
// *burning* when some pair exceeds its threshold in BOTH — the long
// window proves sustained damage, the short window proves it is still
// happening (so alerts clear fast after recovery).  Burn = 1.0 means
// the error budget is consumed exactly at the sustainable rate.
//
// Alert transitions are recorded as FlightRecorder events (kind
// "slo_burn" / "slo_cleared") with hysteresis: a burning SLO clears
// only once every window burn drops below threshold * clearFraction.
// evaluate() is driven by the Scraper's afterScrape hook, so alerting
// rides the scrape cadence and synthetic-time tests drive it directly.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/tsdb.hpp"

namespace ep::obs {

struct BurnWindow {
  std::int64_t longMs = 3600000;
  std::int64_t shortMs = 300000;
  double burnThreshold = 14.4;
};

struct SloSpec {
  enum class Kind { LatencyQuantile, EnergyPerRequest };
  Kind kind = Kind::LatencyQuantile;
  std::string name = "latency";

  // Latency: fraction `objective` of requests finish within
  // latencyThresholdMs, read from `family`'s bucket deltas.
  std::string family = "ep_serve_request_latency_ms";
  double latencyThresholdMs = 0.5;
  double objective = 0.99;

  // Energy: joules per completed request stays within the budget.
  std::string energyFamily = "ep_request_energy_joules";
  std::string requestsFamily = "ep_serve_completed_total";
  double joulesPerRequestBudget = 1.0;

  // Empty = the engine's default window pairs.
  std::vector<BurnWindow> windows;
};

// Parse "[name=]latency:<thresholdMs>:<objective>" or
// "[name=]energy:<joulesPerRequest>".  Returns nullopt and sets *error
// on malformed input.
[[nodiscard]] std::optional<SloSpec> parseSloSpec(const std::string& text,
                                                  std::string* error);

class SloEngine {
 public:
  struct Options {
    // The classic SRE pairs: page on 14.4x over 1h/5m, ticket on 6x
    // over 6h/30m.  Drills override with second-scale windows.
    std::vector<BurnWindow> defaultWindows = {{3600000, 300000, 14.4},
                                              {21600000, 1800000, 6.0}};
    // Hysteresis: clear only below threshold * clearFraction.
    double clearFraction = 0.9;
    std::size_t recorderCapacity = 256;
  };

  struct WindowBurn {
    std::int64_t longMs = 0;
    std::int64_t shortMs = 0;
    double threshold = 0.0;
    double longBurn = 0.0;
    double shortBurn = 0.0;
  };

  struct SloStatus {
    std::string name;
    SloSpec::Kind kind = SloSpec::Kind::LatencyQuantile;
    bool burning = false;
    double worstBurn = 0.0;  // max over every window burn
    std::uint64_t raisedCount = 0;
    std::vector<WindowBurn> windows;
  };

  SloEngine(const TimeSeriesStore* store, std::vector<SloSpec> specs);
  SloEngine(const TimeSeriesStore* store, std::vector<SloSpec> specs,
            Options options);

  // Evaluate every SLO against tsdb history ending at nowNs, raising /
  // clearing alerts.  Call from one thread (the scraper's).
  void evaluate(std::int64_t nowNs);

  [[nodiscard]] std::vector<SloStatus> status() const;
  [[nodiscard]] std::size_t activeAlerts() const;
  [[nodiscard]] std::vector<FlightEvent> events(std::uint64_t since = 0) const {
    return recorder_.snapshot(since);
  }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }
  [[nodiscard]] std::size_t sloCount() const { return states_.size(); }

 private:
  struct State {
    SloSpec spec;
    SloStatus last;
  };

  [[nodiscard]] double burnOver(const SloSpec& spec, std::int64_t fromNs,
                                std::int64_t toNs) const;

  const TimeSeriesStore* store_;
  Options options_;
  FlightRecorder recorder_;
  mutable std::mutex mu_;
  std::vector<State> states_;
};

}  // namespace ep::obs
