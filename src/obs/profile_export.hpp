// epprof export: render aggregated profiles (obs/profiler.hpp) in the
// two interchange formats the ecosystem speaks —
//   * collapsed stacks ("a;b;c <count>"), the Brendan Gregg
//     flamegraph.pl / inferno input, and
//   * speedscope JSON (https://www.speedscope.app schema), an
//     "evented"-free sampled profile loadable in speedscope and
//     chrome-adjacent viewers.
// Plus the small analysis helpers the CLI and ci drills build on:
// inclusive per-frame shares (for `epprof --check`) and cross-shard
// snapshot merging (for FleetRouter::clusterProfile).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace ep::obs {

// Collapsed-stack text: one "frame;frame;frame <n>" line per stack,
// deterministic (weight-descending, then lexicographic).  Counts are
// integers: samples for Cpu profiles, microjoules (rounded) for Energy
// so sub-joule windows survive the integer format.
[[nodiscard]] std::string renderCollapsed(const ProfileSnapshot& snap);

// Speedscope JSON document ("sampled" profile).  Flat enough for the
// in-tree wire parser to validate object-by-object: every frame object
// and the profile header serialize onto their own line.
[[nodiscard]] std::string renderSpeedscope(const ProfileSnapshot& snap,
                                           const std::string& name);

// Inclusive per-frame aggregate: a frame's weight counts every sample
// whose stack contains it (once, even under recursion).
struct FrameShare {
  std::string frame;
  std::uint64_t samples = 0;
  double weight = 0.0;
  double share = 0.0;  // weight / snapshot totalWeight (0 when empty)
};

// All frames with inclusive shares, weight-descending.  topN > 0 caps
// the result.
[[nodiscard]] std::vector<FrameShare> topFrames(const ProfileSnapshot& snap,
                                                std::size_t topN = 0);

// Merge shard snapshots into one cluster profile.  Each shard's stacks
// are reparented under a synthetic "shard/<id>" root frame (mirroring
// metrics federation's shard labels); totals, drops and truncations
// sum.  Kind and samplePeriodUs are taken from the first snapshot.
[[nodiscard]] ProfileSnapshot mergeProfileSnapshots(
    const std::vector<std::pair<std::string, ProfileSnapshot>>& shards);

}  // namespace ep::obs
