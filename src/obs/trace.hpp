// epobs tracing: scoped RAII spans recorded into per-thread ring
// buffers and exported as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Cost model:
//   * Disabled (the default): constructing a Span is one relaxed
//     atomic load and a branch — low single-digit nanoseconds, cheap
//     enough to leave compiled into hot paths permanently.
//   * Enabled: two steady_clock reads plus one push under the owning
//     thread's (uncontended) buffer mutex, ~100 ns.  The mutex exists
//     so a live export never races the recording threads; it is
//     per-thread, so recorders never contend with each other.
//
// Span names must be string literals (the tracer stores the pointer,
// not a copy).  Nesting is tracked per thread: each event carries the
// depth at which it opened, and parent/child structure is recovered by
// Perfetto from the containment of [start, start+dur) intervals on one
// thread track.  Ring buffers overwrite their oldest events when full,
// so a long run keeps the most recent window instead of growing
// without bound; the dropped count is reported.
//
// Request-scoped context: every thread carries a TraceContext (trace
// id + current span id).  Spans opened while a context is installed
// record the trace id and their parent's span id, so the export links
// spans into per-request trees even when the request hops across
// ThreadPool workers (the pool captures the submitter's context into
// each task).  The disabled path never touches the context.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profile_frames.hpp"

namespace ep::obs {

// Request-scoped identity carried across threads.  traceId groups all
// spans of one request (0 = no request in scope: process-level spans
// still link to each other through span ids).  spanId is the innermost
// open span — the parent of the next span opened on this thread.
struct TraceContext {
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;

  [[nodiscard]] bool active() const { return traceId != 0; }
};

namespace detail {

// The calling thread's live context.  Spans save/update/restore it;
// ScopedTraceContext installs one wholesale (pool boundary, wire
// frontend).
inline TraceContext& tlsContext() noexcept {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace detail

// The context that spans opened on this thread right now would inherit.
[[nodiscard]] inline TraceContext currentContext() noexcept {
  return detail::tlsContext();
}

// Install `ctx` as this thread's context for the current scope.  Used
// where a request crosses an execution boundary: the epserved frontend
// installs the wire trace id, the thread pool re-installs the
// submitter's context inside each task.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx)
      : saved_(detail::tlsContext()) {
    detail::tlsContext() = ctx;
  }
  ~ScopedTraceContext() { detail::tlsContext() = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// Map a wire-supplied trace id to a nonzero 64-bit id: up to 16 hex
// digits parse verbatim; anything else is FNV-1a hashed.  Empty -> 0
// (no context).
[[nodiscard]] std::uint64_t traceIdFromString(const std::string& s);
// Lower-case hex rendering (the wire/export form of a trace id).
[[nodiscard]] std::string formatTraceId(std::uint64_t id);

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t startNs = 0;  // since the tracer's epoch
  std::uint64_t durNs = 0;
  std::uint32_t tid = 0;    // tracer-assigned, dense from 1
  std::uint32_t depth = 0;  // nesting depth at span open
  std::uint64_t traceId = 0;       // request trace id (0 = none)
  std::uint64_t spanId = 0;        // this span (unique per process)
  std::uint64_t parentSpanId = 0;  // enclosing span at open (0 = root)
};

namespace detail {

struct ThreadBuffer {
  ThreadBuffer(std::uint32_t id, std::size_t cap)
      : tid(id), capacity(cap) {
    ring.reserve(cap < 4096 ? cap : 4096);
  }

  void push(const TraceEvent& e) {
    std::lock_guard lk(mu);
    if (ring.size() < capacity) {
      ring.push_back(e);
    } else {
      ring[next] = e;
      next = (next + 1) % capacity;
    }
    ++total;
  }

  const std::uint32_t tid;
  std::uint32_t depth = 0;  // touched by the owning thread only
  const std::size_t capacity;
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;      // overwrite cursor once full
  std::uint64_t total = 0;   // events ever pushed
};

}  // namespace detail

class Tracer {
 public:
  explicit Tracer(std::size_t ringCapacity = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer that Span records into.
  static Tracer& global();

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Drop every recorded event (buffers stay registered: threads keep
  // their ids and live spans complete harmlessly).
  void clear();

  [[nodiscard]] std::uint64_t nowNs() const;

  // Process-unique span id, dense from 1.
  [[nodiscard]] std::uint64_t nextSpanId() {
    return spanIds_.fetch_add(1, std::memory_order_relaxed);
  }

  // Copy of everything currently recorded, all threads interleaved.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::uint64_t recordedCount() const;
  // Events lost to ring overflow since the last clear().
  [[nodiscard]] std::uint64_t droppedCount() const;

  // Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":
  // [...]} where every event is a flat "ph":"X" complete event with
  // ts/dur in microseconds plus "span"/"parent" ids and the request
  // "trace" id in hex.  When a parent span lives on another thread and
  // both sides are still in the rings, a "ph":"s"/"ph":"f" flow-event
  // pair renders the cross-thread edge in Perfetto.  Loadable in
  // Perfetto and parseable object-by-object with the in-tree flat-JSON
  // wire parser.
  [[nodiscard]] std::string exportChromeTrace() const;

  // The calling thread's buffer (registered on first use).
  detail::ThreadBuffer& threadBuffer();

 private:
  const std::uint64_t id_;  // distinguishes tracer instances in TLS
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> spanIds_{1};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t ringCapacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers_;
  std::uint32_t nextTid_ = 1;
};

// RAII span on the global tracer.  `name` must outlive the tracer
// (use string literals).
class Span {
 public:
  explicit Span(const char* name) {
    // Mirror the span onto the profiler's shadow stack while sampling
    // is armed, so profiles read as the span hierarchy.
    if (profilerArmed()) framePushed_ = prof_detail::pushFrame(name);
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;
    buf_ = &t.threadBuffer();
    name_ = name;
    depth_ = buf_->depth++;
    TraceContext& cur = detail::tlsContext();
    saved_ = cur;
    spanId_ = t.nextSpanId();
    cur.spanId = spanId_;  // children opened in scope parent here
    startNs_ = t.nowNs();
  }

  ~Span() {
    if (framePushed_) prof_detail::popFrame();
    if (buf_ == nullptr) return;
    --buf_->depth;
    detail::tlsContext() = saved_;
    buf_->push(TraceEvent{name_, startNs_,
                          Tracer::global().nowNs() - startNs_, buf_->tid,
                          depth_, saved_.traceId, spanId_, saved_.spanId});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // The id this span records under (0 when tracing is disabled).
  [[nodiscard]] std::uint64_t spanId() const { return spanId_; }

 private:
  detail::ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t startNs_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t spanId_ = 0;
  bool framePushed_ = false;
  TraceContext saved_{};
};

}  // namespace ep::obs
