// epobs tracing: scoped RAII spans recorded into per-thread ring
// buffers and exported as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Cost model:
//   * Disabled (the default): constructing a Span is one relaxed
//     atomic load and a branch — low single-digit nanoseconds, cheap
//     enough to leave compiled into hot paths permanently.
//   * Enabled: two steady_clock reads plus one push under the owning
//     thread's (uncontended) buffer mutex, ~100 ns.  The mutex exists
//     so a live export never races the recording threads; it is
//     per-thread, so recorders never contend with each other.
//
// Span names must be string literals (the tracer stores the pointer,
// not a copy).  Nesting is tracked per thread: each event carries the
// depth at which it opened, and parent/child structure is recovered by
// Perfetto from the containment of [start, start+dur) intervals on one
// thread track.  Ring buffers overwrite their oldest events when full,
// so a long run keeps the most recent window instead of growing
// without bound; the dropped count is reported.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ep::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t startNs = 0;  // since the tracer's epoch
  std::uint64_t durNs = 0;
  std::uint32_t tid = 0;    // tracer-assigned, dense from 1
  std::uint32_t depth = 0;  // nesting depth at span open
};

namespace detail {

struct ThreadBuffer {
  ThreadBuffer(std::uint32_t id, std::size_t cap)
      : tid(id), capacity(cap) {
    ring.reserve(cap < 4096 ? cap : 4096);
  }

  void push(const TraceEvent& e) {
    std::lock_guard lk(mu);
    if (ring.size() < capacity) {
      ring.push_back(e);
    } else {
      ring[next] = e;
      next = (next + 1) % capacity;
    }
    ++total;
  }

  const std::uint32_t tid;
  std::uint32_t depth = 0;  // touched by the owning thread only
  const std::size_t capacity;
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;      // overwrite cursor once full
  std::uint64_t total = 0;   // events ever pushed
};

}  // namespace detail

class Tracer {
 public:
  explicit Tracer(std::size_t ringCapacity = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer that Span records into.
  static Tracer& global();

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Drop every recorded event (buffers stay registered: threads keep
  // their ids and live spans complete harmlessly).
  void clear();

  [[nodiscard]] std::uint64_t nowNs() const;

  // Copy of everything currently recorded, all threads interleaved.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::uint64_t recordedCount() const;
  // Events lost to ring overflow since the last clear().
  [[nodiscard]] std::uint64_t droppedCount() const;

  // Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":
  // [...]} where every event is a flat "ph":"X" complete event with
  // ts/dur in microseconds.  Loadable in Perfetto and parseable object
  // -by-object with the in-tree flat-JSON wire parser.
  [[nodiscard]] std::string exportChromeTrace() const;

  // The calling thread's buffer (registered on first use).
  detail::ThreadBuffer& threadBuffer();

 private:
  const std::uint64_t id_;  // distinguishes tracer instances in TLS
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t ringCapacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers_;
  std::uint32_t nextTid_ = 1;
};

// RAII span on the global tracer.  `name` must outlive the tracer
// (use string literals).
class Span {
 public:
  explicit Span(const char* name) {
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;
    buf_ = &t.threadBuffer();
    name_ = name;
    depth_ = buf_->depth++;
    startNs_ = t.nowNs();
  }

  ~Span() {
    if (buf_ == nullptr) return;
    --buf_->depth;
    buf_->push(TraceEvent{name_, startNs_,
                          Tracer::global().nowNs() - startNs_, buf_->tid,
                          depth_});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  detail::ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t startNs_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace ep::obs
