// epfault — deterministic fault injection for the measurement pipeline.
//
// Real measurement campaigns fight instruments that drop samples, stick
// at a reading, spike, return NaN/zero, drift, or time out for whole
// windows.  This library reproduces those pathologies *deterministically*:
// every fault decision is drawn from an ep::Rng stream forked off the
// measurement stream, so a campaign with a fixed seed is bit-for-bit
// reproducible at any thread-pool size — which is what lets the test
// suite assert that the robustness machinery (eppower's RobustnessOptions,
// the study failure policies, the serve circuit breaker) actually
// recovers the paper's results under a known fault load.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace ep::fault {

enum class FaultKind {
  DroppedSample,
  StuckReading,
  Spike,
  NanReading,
  ZeroReading,
  GainDrift,
  MeterTimeout,
  ConstantOffset,
};

[[nodiscard]] const char* faultKindName(FaultKind k);

// How a sweep reacts to a configuration whose measurement failed
// (budget exhausted, unlaunchable, ...).
enum class FailPolicy {
  FailFast,       // propagate the first failure (the historical behaviour)
  SkipAndRecord,  // drop the config from the results, surface the error
};

struct FaultInjectionOptions {
  bool enabled = false;

  // Per-sample corruption probability; an affected sample is assigned
  // one of the per-sample kinds below according to the relative weights.
  double sampleFaultRate = 0.0;
  double dropWeight = 0.30;
  double stuckWeight = 0.15;
  double spikeWeight = 0.25;
  double nanWeight = 0.10;
  double zeroWeight = 0.20;

  // Per-window faults.
  double timeoutRate = 0.0;    // whole-window meter timeout probability
  double gainDriftRate = 0.0;  // probability of a linear gain drift
  double gainDriftMax = 0.05;  // drift reaches +/- this at window end
  // Constant additive component: every sample of an affected window
  // reads offsetWatts high, modelling an energy-expensive component
  // switching on (the paper's Fig 6 ~58 W offset).  Unlike a spike it
  // survives sanitization and MAD screening — only a decomposition of
  // the trace against expected power (the anomaly watchdog) sees it.
  double offsetRate = 0.0;
  double offsetWatts = 0.0;

  int stuckRunLength = 4;    // samples held at the stuck value
  double spikeFactor = 4.0;  // multiplicative reading spike

  // Salt of the fault stream forked off the measurement stream; two
  // decorators over the same stream stay decorrelated with distinct
  // salts.
  std::uint64_t streamSalt = 0xFA17ULL;

  // The scripted campaign shape used by tools/faultcheck and the tests:
  // `rate` is the per-sample corruption probability, with window-level
  // faults scaled down so a multi-sample window is not dominated by
  // timeouts.
  [[nodiscard]] static FaultInjectionOptions campaign(double rate);
};

// Injection tally of one FaultyMeter instance.
struct FaultCounts {
  std::uint64_t dropped = 0;
  std::uint64_t stuck = 0;
  std::uint64_t spikes = 0;
  std::uint64_t nans = 0;
  std::uint64_t zeros = 0;
  std::uint64_t gainDrifts = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t offsets = 0;

  [[nodiscard]] std::uint64_t total() const {
    return dropped + stuck + spikes + nans + zeros + gainDrifts + timeouts +
           offsets;
  }
  FaultCounts& operator+=(const FaultCounts& o);
  [[nodiscard]] std::string summary() const;
};

}  // namespace ep::fault
