#include "fault/faulty_meter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.hpp"

namespace ep::fault {

namespace {

obs::Counter& injectedCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "ep_fault_injected_total", "Faults injected into meter recordings");
  return c;
}

}  // namespace

FaultyMeter::FaultyMeter(power::WattsUpMeter inner,
                         FaultInjectionOptions faults)
    : inner_(std::move(inner)), faults_(faults) {
  EP_REQUIRE(faults_.sampleFaultRate >= 0.0 && faults_.sampleFaultRate <= 1.0,
             "sample fault rate must be in [0, 1]");
  EP_REQUIRE(faults_.timeoutRate >= 0.0 && faults_.timeoutRate <= 1.0,
             "timeout rate must be in [0, 1]");
  EP_REQUIRE(faults_.gainDriftRate >= 0.0 && faults_.gainDriftRate <= 1.0,
             "gain drift rate must be in [0, 1]");
  EP_REQUIRE(faults_.gainDriftMax >= 0.0 && std::isfinite(faults_.gainDriftMax),
             "gain drift magnitude must be finite and >= 0");
  EP_REQUIRE(faults_.offsetRate >= 0.0 && faults_.offsetRate <= 1.0,
             "offset rate must be in [0, 1]");
  EP_REQUIRE(std::isfinite(faults_.offsetWatts),
             "offset watts must be finite");
  EP_REQUIRE(faults_.stuckRunLength >= 1, "stuck run length must be >= 1");
  EP_REQUIRE(std::isfinite(faults_.spikeFactor),
             "spike factor must be finite");
  EP_REQUIRE(faults_.dropWeight >= 0.0 && faults_.stuckWeight >= 0.0 &&
                 faults_.spikeWeight >= 0.0 && faults_.nanWeight >= 0.0 &&
                 faults_.zeroWeight >= 0.0,
             "fault kind weights must be non-negative");
  sampleWeightSum_ = faults_.dropWeight + faults_.stuckWeight +
                     faults_.spikeWeight + faults_.nanWeight +
                     faults_.zeroWeight;
  EP_REQUIRE(!faults_.enabled || faults_.sampleFaultRate == 0.0 ||
                 sampleWeightSum_ > 0.0,
             "sample faults enabled but every kind weight is zero");
}

void FaultyMeter::recordInto(const power::PowerSource& source,
                             Seconds duration, Rng& rng,
                             power::PowerTrace& out) const {
  if (!faults_.enabled) {
    inner_.recordInto(source, duration, rng, out);
    return;
  }
  // The fault stream forks off the measurement stream with a per-window
  // salt: decisions are deterministic, do not perturb the inner meter's
  // noise draws, and differ between a timed-out window and its retry.
  const std::uint64_t window = ++window_;
  Rng f = rng.fork(mix64(mix64(0, faults_.streamSalt), window));

  // Whole-window timeout is decided before any recording: a stalled
  // serial link delivers nothing, and the inner meter must not consume
  // measurement draws for a window that never happened.
  if (faults_.timeoutRate > 0.0 &&
      f.uniform(0.0, 1.0) < faults_.timeoutRate) {
    ++counts_.timeouts;
    injectedCounter().inc();
    throw power::MeterTimeoutError("injected meter timeout (window " +
                                   std::to_string(window) + ")");
  }

  inner_.recordInto(source, duration, rng, scratch_);
  const auto& samples = scratch_.samples();

  double drift = 0.0;
  if (faults_.gainDriftRate > 0.0 &&
      f.uniform(0.0, 1.0) < faults_.gainDriftRate) {
    drift = f.uniform(-faults_.gainDriftMax, faults_.gainDriftMax);
    ++counts_.gainDrifts;
    injectedCounter().inc();
  }
  // Constant additive component over the whole window.  Drawn only when
  // configured so existing campaigns keep their draw sequences.
  double offset = 0.0;
  if (faults_.offsetRate > 0.0 &&
      f.uniform(0.0, 1.0) < faults_.offsetRate) {
    offset = faults_.offsetWatts;
    ++counts_.offsets;
    injectedCounter().inc();
  }
  const double t0 = samples.empty() ? 0.0 : samples.front().time.value();
  const double span =
      samples.empty()
          ? 1.0
          : std::max(samples.back().time.value() - t0, 1e-12);

  out.clear();
  out.reserve(samples.size());
  int stuckRemaining = 0;
  double stuckValue = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // The bracketing samples at the window edges are never dropped:
    // energy integration needs the window endpoints (they may still be
    // value-corrupted, which trace validation catches).
    const bool endpoint = i == 0 || i + 1 == samples.size();
    double p = samples[i].power.value();
    // Gain drift grows linearly over the window, reaching `drift` at
    // the last sample — a slow instrument calibration walk.
    p *= 1.0 + drift * ((samples[i].time.value() - t0) / span);
    const double u = f.uniform(0.0, 1.0);
    if (stuckRemaining > 0) {
      p = stuckValue;
      --stuckRemaining;
    } else if (faults_.sampleFaultRate > 0.0 &&
               u < faults_.sampleFaultRate) {
      // u < rate implies u/rate is itself uniform in [0, 1): one draw
      // decides both whether a sample faults and which kind it gets.
      double pick = (u / faults_.sampleFaultRate) * sampleWeightSum_;
      if ((pick -= faults_.dropWeight) < 0.0) {
        if (!endpoint) {
          ++counts_.dropped;
          injectedCounter().inc();
          continue;
        }
      } else if ((pick -= faults_.stuckWeight) < 0.0) {
        ++counts_.stuck;
        injectedCounter().inc();
        stuckValue = p;
        stuckRemaining = faults_.stuckRunLength - 1;
      } else if ((pick -= faults_.spikeWeight) < 0.0) {
        ++counts_.spikes;
        injectedCounter().inc();
        p *= faults_.spikeFactor;
      } else if ((pick -= faults_.nanWeight) < 0.0) {
        ++counts_.nans;
        injectedCounter().inc();
        p = std::numeric_limits<double>::quiet_NaN();
      } else {
        ++counts_.zeros;
        injectedCounter().inc();
        p = 0.0;
      }
    }
    out.append({samples[i].time, Watts{p + offset}});
  }
}

}  // namespace ep::fault
