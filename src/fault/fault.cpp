#include "fault/fault.hpp"

namespace ep::fault {

const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::DroppedSample:
      return "dropped_sample";
    case FaultKind::StuckReading:
      return "stuck_reading";
    case FaultKind::Spike:
      return "spike";
    case FaultKind::NanReading:
      return "nan_reading";
    case FaultKind::ZeroReading:
      return "zero_reading";
    case FaultKind::GainDrift:
      return "gain_drift";
    case FaultKind::MeterTimeout:
      return "meter_timeout";
    case FaultKind::ConstantOffset:
      return "constant_offset";
  }
  return "unknown";
}

FaultInjectionOptions FaultInjectionOptions::campaign(double rate) {
  EP_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0, 1]");
  FaultInjectionOptions o;
  o.enabled = rate > 0.0;
  o.sampleFaultRate = rate;
  // Window-level faults scale down: one window holds many samples, so
  // equal per-window rates would drown the campaign in timeouts.
  o.timeoutRate = rate / 4.0;
  o.gainDriftRate = rate / 2.0;
  return o;
}

FaultCounts& FaultCounts::operator+=(const FaultCounts& o) {
  dropped += o.dropped;
  stuck += o.stuck;
  spikes += o.spikes;
  nans += o.nans;
  zeros += o.zeros;
  gainDrifts += o.gainDrifts;
  timeouts += o.timeouts;
  offsets += o.offsets;
  return *this;
}

std::string FaultCounts::summary() const {
  return "dropped=" + std::to_string(dropped) +
         " stuck=" + std::to_string(stuck) +
         " spikes=" + std::to_string(spikes) +
         " nans=" + std::to_string(nans) +
         " zeros=" + std::to_string(zeros) +
         " gain_drifts=" + std::to_string(gainDrifts) +
         " timeouts=" + std::to_string(timeouts) +
         " offsets=" + std::to_string(offsets) +
         " total=" + std::to_string(total());
}

}  // namespace ep::fault
