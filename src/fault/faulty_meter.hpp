// FaultyMeter: a fault-injecting decorator over any power::Meter.
//
// Wraps the instrument and corrupts its output according to
// FaultInjectionOptions: whole-window timeouts (thrown as
// power::MeterTimeoutError before any recording), window-level gain
// drift, and per-sample corruption (dropped / stuck-at / spike / NaN /
// zero readings).  The inner meter's noise stream is untouched — a
// faulted recording is exactly the clean recording plus corruption —
// and every fault decision draws from a stream forked off the
// measurement Rng with a per-window salt, so:
//
//   * serial == parallel bitwise identity is preserved (each
//     configuration measures through its own forked stream, as
//     everywhere else in the pipeline), and
//   * a retry after a timeout sees a *new* fault stream (the window
//     counter advances), so bounded retries can actually recover.
//
// One FaultyMeter serves one measurement stream: recordInto mutates the
// window counter and the injection tally, so concurrent calls on a
// single instance are not supported (the apps construct one meter per
// configuration, which is exactly that shape).
#pragma once

#include "fault/fault.hpp"
#include "power/meter.hpp"

namespace ep::fault {

class FaultyMeter final : public power::Meter {
 public:
  FaultyMeter(power::WattsUpMeter inner, FaultInjectionOptions faults);

  void recordInto(const power::PowerSource& source, Seconds duration,
                  Rng& rng, power::PowerTrace& out) const override;

  [[nodiscard]] const power::WattsUpMeter& inner() const { return inner_; }
  [[nodiscard]] const FaultInjectionOptions& faults() const { return faults_; }
  // Injection tally since construction.
  [[nodiscard]] const FaultCounts& counts() const { return counts_; }
  // Recording windows attempted (including timed-out ones).
  [[nodiscard]] std::uint64_t windows() const { return window_; }

 private:
  power::WattsUpMeter inner_;
  FaultInjectionOptions faults_;
  double sampleWeightSum_ = 0.0;
  // Per-instance recording state (one instrument = one measurement
  // stream; see header comment).
  mutable std::uint64_t window_ = 0;
  mutable FaultCounts counts_;
  mutable power::PowerTrace scratch_;
};

}  // namespace ep::fault
