// The system-level bi-objective baselines of the related-work section:
//   * minimize energy under an execution-time constraint ([18]-style),
//   * maximize performance under an energy budget ([16], [17]-style),
//   * the full energy/performance Pareto front over P-states
//     ([19]-[21]-style, with frequency as the only decision variable).
#pragma once

#include <optional>
#include <vector>

#include "dvfs/processor.hpp"
#include "pareto/point.hpp"

namespace ep::dvfs {

// Cheapest state whose execution time meets the deadline; nullopt if
// even the highest state is too slow.
[[nodiscard]] std::optional<DvfsRun> minimizeEnergyUnderDeadline(
    const DvfsProcessor& proc, const Workload& w, Seconds deadline);

// Fastest state whose dynamic energy stays within the budget; nullopt
// if even the lowest state exceeds it.
[[nodiscard]] std::optional<DvfsRun> maximizePerformanceUnderBudget(
    const DvfsProcessor& proc, const Workload& w, Joules budget);

// All P-state runs as bi-objective points (configId = state index).
[[nodiscard]] std::vector<pareto::BiPoint> dvfsPoints(
    const DvfsProcessor& proc, const Workload& w);

// The Pareto-optimal subset of dvfsPoints.
[[nodiscard]] std::vector<pareto::BiPoint> dvfsParetoFront(
    const DvfsProcessor& proc, const Workload& w);

}  // namespace ep::dvfs
