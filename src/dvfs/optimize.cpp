#include "dvfs/optimize.hpp"

#include "pareto/front.hpp"

namespace ep::dvfs {

std::optional<DvfsRun> minimizeEnergyUnderDeadline(const DvfsProcessor& proc,
                                                   const Workload& w,
                                                   Seconds deadline) {
  std::optional<DvfsRun> best;
  for (const auto& state : proc.table().states()) {
    const DvfsRun r = proc.run(w, state);
    if (r.time > deadline) continue;
    if (!best || r.dynamicEnergy < best->dynamicEnergy) best = r;
  }
  return best;
}

std::optional<DvfsRun> maximizePerformanceUnderBudget(
    const DvfsProcessor& proc, const Workload& w, Joules budget) {
  std::optional<DvfsRun> best;
  for (const auto& state : proc.table().states()) {
    const DvfsRun r = proc.run(w, state);
    if (r.dynamicEnergy > budget) continue;
    if (!best || r.time < best->time) best = r;
  }
  return best;
}

std::vector<pareto::BiPoint> dvfsPoints(const DvfsProcessor& proc,
                                        const Workload& w) {
  std::vector<pareto::BiPoint> pts;
  const auto& states = proc.table().states();
  pts.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const DvfsRun r = proc.run(w, states[i]);
    pareto::BiPoint p;
    p.time = r.time;
    p.energy = r.dynamicEnergy;
    p.configId = i;
    p.label = "f=" + std::to_string(static_cast<int>(states[i].freqMHz)) +
              "MHz";
    pts.push_back(std::move(p));
  }
  return pts;
}

std::vector<pareto::BiPoint> dvfsParetoFront(const DvfsProcessor& proc,
                                             const Workload& w) {
  return pareto::paretoFront(dvfsPoints(proc, w));
}

}  // namespace ep::dvfs
