#include "dvfs/governor.hpp"

#include "common/error.hpp"

namespace ep::dvfs {

GovernorSim::GovernorSim(PStateTable table, GovernorPolicy policy)
    : table_(std::move(table)), policy_(policy) {
  reset();
}

void GovernorSim::reset() {
  switch (policy_) {
    case GovernorPolicy::kPerformance:
      index_ = table_.size() - 1;
      break;
    case GovernorPolicy::kPowersave:
      index_ = 0;
      break;
    case GovernorPolicy::kOndemand:
      index_ = 0;
      break;
  }
}

const PState& GovernorSim::current() const { return table_[index_]; }

const PState& GovernorSim::step(double utilization) {
  EP_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
             "utilization must be in [0,1]");
  switch (policy_) {
    case GovernorPolicy::kPerformance:
    case GovernorPolicy::kPowersave:
      break;  // static policies
    case GovernorPolicy::kOndemand:
      if (utilization > kUpThreshold) {
        index_ = table_.size() - 1;  // ondemand jumps straight to max
      } else if (utilization < kDownThreshold && index_ > 0) {
        --index_;  // decay one bin per quiet interval
      }
      break;
  }
  return table_[index_];
}

std::vector<PState> GovernorSim::run(
    const std::vector<double>& utilizationTrace) {
  std::vector<PState> out;
  out.reserve(utilizationTrace.size());
  for (double u : utilizationTrace) out.push_back(step(u));
  return out;
}

}  // namespace ep::dvfs
