// OS frequency governors over the P-state ladder: the runtime policies
// a deployed system would actually use, simulated step-by-step on a
// utilization trace.  Used to contrast policy-driven frequency choices
// with the exact bi-objective optima of optimize.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/pstate.hpp"

namespace ep::dvfs {

enum class GovernorPolicy {
  kPerformance,  // always the highest state
  kPowersave,    // always the lowest state
  kOndemand,     // jump to max above the up-threshold, step down when idle
};

class GovernorSim {
 public:
  GovernorSim(PStateTable table, GovernorPolicy policy);

  // Feed one utilization sample in [0,1]; returns the state chosen for
  // the next interval.
  const PState& step(double utilization);

  [[nodiscard]] const PState& current() const;
  [[nodiscard]] GovernorPolicy policy() const { return policy_; }

  // Run over a whole trace and return the chosen state per sample.
  [[nodiscard]] std::vector<PState> run(
      const std::vector<double>& utilizationTrace);

  void reset();

 private:
  PStateTable table_;
  GovernorPolicy policy_;
  std::size_t index_ = 0;

  static constexpr double kUpThreshold = 0.80;   // ondemand defaults
  static constexpr double kDownThreshold = 0.30;
};

}  // namespace ep::dvfs
