#include "dvfs/pstate.hpp"

#include "common/error.hpp"

namespace ep::dvfs {

PStateTable::PStateTable(std::vector<PState> states)
    : states_(std::move(states)) {
  EP_REQUIRE(!states_.empty(), "P-state table must not be empty");
  for (std::size_t i = 0; i < states_.size(); ++i) {
    EP_REQUIRE(states_[i].freqMHz > 0.0 && states_[i].voltage > 0.0,
               "P-states need positive frequency and voltage");
    if (i > 0) {
      EP_REQUIRE(states_[i].freqMHz > states_[i - 1].freqMHz,
                 "P-states must be strictly increasing in frequency");
      EP_REQUIRE(states_[i].voltage >= states_[i - 1].voltage,
                 "voltage must be non-decreasing with frequency");
    }
  }
}

const PState& PStateTable::operator[](std::size_t i) const {
  EP_REQUIRE(i < states_.size(), "P-state index out of range");
  return states_[i];
}

const PState& PStateTable::atLeast(double freqMHz) const {
  for (const auto& s : states_) {
    if (s.freqMHz >= freqMHz) return s;
  }
  return states_.back();
}

PStateTable haswellPStates() {
  // 100 MHz bins from 1.2 to 2.3 GHz nominal plus two turbo bins;
  // voltages follow the typical near-linear V/f curve of the part.
  std::vector<PState> states;
  for (double f = 1200.0; f <= 2300.0; f += 100.0) {
    const double v = 0.65 + (f - 1200.0) / (2300.0 - 1200.0) * 0.35;
    states.push_back({f, v});
  }
  states.push_back({2600.0, 1.08});
  states.push_back({3100.0, 1.18});
  return PStateTable(std::move(states));
}

}  // namespace ep::dvfs
