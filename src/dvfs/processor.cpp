#include "dvfs/processor.hpp"

#include "common/error.hpp"

namespace ep::dvfs {

DvfsProcessor::DvfsProcessor(PStateTable table,
                             double computeRateAtMaxGflops,
                             Watts maxDynamicPower,
                             Watts leakageAtMaxVoltage)
    : table_(std::move(table)),
      rateAtMax_(computeRateAtMaxGflops),
      maxDynamicPower_(maxDynamicPower),
      leakageAtMaxVoltage_(leakageAtMaxVoltage) {
  EP_REQUIRE(rateAtMax_ > 0.0, "compute rate must be positive");
  EP_REQUIRE(maxDynamicPower_.value() > 0.0, "max power must be positive");
  EP_REQUIRE(leakageAtMaxVoltage_.value() >= 0.0,
             "leakage must be non-negative");
  EP_REQUIRE(leakageAtMaxVoltage_ < maxDynamicPower_,
             "leakage cannot exceed total dynamic power");
}

DvfsProcessor DvfsProcessor::fromCpuSpec(const hw::CpuSpec& spec) {
  // Peak rate at the top turbo state; switching power sized so the full
  // node draws ~1.1x TDP of dynamic power at fmax, with ~15 % leakage.
  const Watts maxDyn{1.1 * spec.tdpPerSocket.value() * spec.sockets * 0.6};
  const Watts leak{0.15 * maxDyn.value()};
  return DvfsProcessor(haswellPStates(), spec.peakGflops, maxDyn, leak);
}

DvfsRun DvfsProcessor::run(const Workload& w, const PState& state) const {
  EP_REQUIRE(w.gflops > 0.0, "workload must be positive");
  EP_REQUIRE(w.memBoundFraction >= 0.0 && w.memBoundFraction <= 1.0,
             "memory-bound fraction must be in [0,1]");
  const PState& top = table_.highest();

  // Time at fmax is gflops / rateAtMax; only the compute share scales.
  const double tAtMax = w.gflops / rateAtMax_;
  const double fScale = top.freqMHz / state.freqMHz;
  const double t = tAtMax * ((1.0 - w.memBoundFraction) * fScale +
                             w.memBoundFraction);

  // Power: switching ~ f V^2 normalized at fmax; leakage ~ V^2.
  const double fv2 = state.freqMHz * state.voltage * state.voltage;
  const double fv2Max = top.freqMHz * top.voltage * top.voltage;
  const double switching =
      (maxDynamicPower_.value() - leakageAtMaxVoltage_.value()) * fv2 /
      fv2Max;
  const double leak = leakageAtMaxVoltage_.value() *
                      (state.voltage * state.voltage) /
                      (top.voltage * top.voltage);
  // Memory-stall periods draw less core switching power.
  const double utilization =
      (1.0 - w.memBoundFraction) * fScale /
      ((1.0 - w.memBoundFraction) * fScale + w.memBoundFraction);
  const double power = switching * (0.35 + 0.65 * utilization) + leak;

  DvfsRun r;
  r.time = Seconds{t};
  r.dynamicPower = Watts{power};
  r.dynamicEnergy = r.dynamicPower * r.time;
  r.state = state;
  return r;
}

}  // namespace ep::dvfs
