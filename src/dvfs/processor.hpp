// A processor under DVFS: how execution time and dynamic power respond
// to the chosen P-state for a workload with a given memory-boundness.
//
//   time(f)  = work * [ computeShare / rate(f) + memShare / memRate ]
//              — the compute part scales with frequency, the memory
//                part does not (the classic DVFS insight: memory-bound
//                codes can be down-clocked almost for free),
//   power(f) = cEff * f * V(f)^2 + leakage(V)
//              — switching power is f V^2; leakage grows with voltage.
#pragma once

#include "common/units.hpp"
#include "dvfs/pstate.hpp"
#include "hw/spec.hpp"

namespace ep::dvfs {

struct DvfsRun {
  Seconds time{0.0};
  Watts dynamicPower{0.0};
  Joules dynamicEnergy{0.0};
  PState state;
};

struct Workload {
  double gflops = 0.0;          // total compute work
  double memBoundFraction = 0;  // share of time at fmax spent on memory
};

class DvfsProcessor {
 public:
  // computeRateAtMax: GFLOP/s at the highest P-state; memory throughput
  // is folded into the workload's memBoundFraction.
  DvfsProcessor(PStateTable table, double computeRateAtMaxGflops,
                Watts maxDynamicPower, Watts leakageAtMaxVoltage);

  // Derive the node-level DVFS response of the Table I Haswell.
  [[nodiscard]] static DvfsProcessor fromCpuSpec(const hw::CpuSpec& spec);

  [[nodiscard]] const PStateTable& table() const { return table_; }

  [[nodiscard]] DvfsRun run(const Workload& w, const PState& state) const;

 private:
  PStateTable table_;
  double rateAtMax_;
  Watts maxDynamicPower_;
  Watts leakageAtMaxVoltage_;
};

}  // namespace ep::dvfs
