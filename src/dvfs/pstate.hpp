// DVFS performance states.
//
// The related-work section's first category of bi-objective methods
// ([16]-[21]) acts through Dynamic Voltage and Frequency Scaling.  This
// substrate models a processor's P-state table — (frequency, voltage)
// pairs — so those system-level methods can be implemented as baselines
// against the paper's application-level decision variables.
#pragma once

#include <cstddef>
#include <vector>

namespace ep::dvfs {

struct PState {
  double freqMHz = 0.0;
  double voltage = 0.0;  // volts
  [[nodiscard]] bool operator==(const PState&) const = default;
};

class PStateTable {
 public:
  // States must be strictly increasing in frequency and non-decreasing
  // in voltage (higher clocks need at least as much voltage).
  explicit PStateTable(std::vector<PState> states);

  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] const PState& operator[](std::size_t i) const;
  [[nodiscard]] const PState& lowest() const { return states_.front(); }
  [[nodiscard]] const PState& highest() const { return states_.back(); }
  [[nodiscard]] const std::vector<PState>& states() const { return states_; }

  // Smallest state with freq >= target (highest state if none).
  [[nodiscard]] const PState& atLeast(double freqMHz) const;

 private:
  std::vector<PState> states_;
};

// The Haswell EP server P-state ladder (1.2 - 3.1 GHz with turbo),
// voltages from the typical V/f curve of the part.
[[nodiscard]] PStateTable haswellPStates();

}  // namespace ep::dvfs
