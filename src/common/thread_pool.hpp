// A small fixed-size thread pool with nested-safe parallel-for helpers.
//
// Used by the real compute substrates (epfft, epblas), the functional
// CUDA-block executor, and the parallel study engine (epapps/epcore via
// the epserve broker).  Work items are plain std::function tasks.
//
// parallelFor is built on a per-call completion latch plus caller
// work-participation: the calling thread claims and runs chunks itself
// while pool workers help.  Because the caller never waits on *other*
// callers' tasks (the old global-wait() hazard) and always makes
// progress on its own chunks, parallelFor is safe to invoke from inside
// a pool task — including on a pool whose every worker is itself inside
// a parallelFor — and two concurrent parallelFor calls never observe
// each other.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ep {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  // profileLabel, when non-empty, is pushed as each worker's root frame
  // on the epprof shadow stack ("pool/worker" by default; the fleet
  // router labels each shard's pool "shard/<id>" so cluster profiles
  // partition by shard).
  explicit ThreadPool(std::size_t threads = 0, std::string profileLabel = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Introspection for gauges and tests: tasks enqueued but not yet
  // picked up by a worker, and tasks submitted but not yet finished
  // (queued + running).  Both are instantaneous snapshots.
  [[nodiscard]] std::size_t queueDepth() const;
  [[nodiscard]] std::size_t inFlight() const;

  // Enqueue a task; tasks may not themselves block on the pool's
  // wait(), but they MAY call parallelFor/parallelMap (nested-safe).
  void submit(std::function<void()> task);

  // Block until all submitted tasks have completed.  Global: waits on
  // every caller's tasks, so never call it from inside a pool task.
  void wait();

  // Run fn(i) for i in [begin, end) and wait for completion.  The range
  // is split into chunks of `grain` consecutive indices (grain == 0
  // picks a default that yields ~4 chunks per worker); chunks are
  // claimed dynamically by pool workers AND by the calling thread.
  //
  // Error contract (identical on the parallel and the serial fall-back
  // path, where "serial" means a single chunk run inline):
  //   * the FIRST error recorded wins and is rethrown to the caller;
  //   * once any chunk has failed, remaining chunks are short-circuited:
  //     unclaimed chunks are skipped entirely and in-progress chunks
  //     stop before their next index.
  // Results must not depend on chunk execution order: fn(i) may only
  // write state owned exclusively by index i (this is what makes
  // parallel study evaluation bitwise-identical to serial).
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 0);

  // parallelFor producing a value per index, in index order.  T must be
  // default-constructible; fn(i) runs under the parallelFor contract.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallelMap(std::size_t n, Fn&& fn,
                                           std::size_t grain = 0) {
    std::vector<T> out(n);
    parallelFor(
        0, n, [&](std::size_t i) { out[i] = fn(i); }, grain);
    return out;
  }

 private:
  struct ParallelForState;

  void workerLoop();
  // Claim-and-run loop shared by the caller and the helper tasks.
  static void runChunks(ParallelForState& st);

  const std::string profileLabel_;  // stable: workers hold its c_str()
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cvTask_;
  std::condition_variable cvDone_;
  std::size_t inFlight_ = 0;
  bool stop_ = false;
};

}  // namespace ep
