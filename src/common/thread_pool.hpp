// A small fixed-size thread pool with a parallel-for helper.
//
// Used by the real compute substrates (epfft, epblas) and by the functional
// CUDA-block executor.  Work items are plain std::function tasks; parallelFor
// chunks an index range statically (the substrates are load-balanced by
// construction, matching the paper's application design constraints).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ep {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Introspection for gauges and tests: tasks enqueued but not yet
  // picked up by a worker, and tasks submitted but not yet finished
  // (queued + running).  Both are instantaneous snapshots.
  [[nodiscard]] std::size_t queueDepth() const;
  [[nodiscard]] std::size_t inFlight() const;

  // Enqueue a task; tasks may not themselves block on the pool.
  void submit(std::function<void()> task);

  // Block until all submitted tasks have completed.
  void wait();

  // Run fn(i) for i in [begin, end), statically chunked over the pool,
  // and wait for completion.  Exceptions from fn propagate (first one wins).
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cvTask_;
  std::condition_variable cvDone_;
  std::size_t inFlight_ = 0;
  bool stop_ = false;
};

}  // namespace ep
