// Small math helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ep {

[[nodiscard]] constexpr bool isPowerOfTwo(std::uint64_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::uint64_t nextPowerOfTwo(std::uint64_t n);

// floor(log2(n)) for n >= 1.
[[nodiscard]] unsigned ilog2(std::uint64_t n);

// Ceiling division for non-negative integers.
[[nodiscard]] constexpr std::uint64_t ceilDiv(std::uint64_t a,
                                              std::uint64_t b) {
  return (a + b - 1) / b;
}

// n evenly spaced values over [lo, hi] inclusive (n >= 2), or {lo} for n==1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t n);

// Positive divisors of n in ascending order.
[[nodiscard]] std::vector<std::uint64_t> divisorsOf(std::uint64_t n);

// Clamp helper mirroring std::clamp but total for NaN (returns lo).
[[nodiscard]] double clampFinite(double v, double lo, double hi);

// Relative difference |a-b| / max(|a|,|b|), zero if both are zero.
[[nodiscard]] double relativeDifference(double a, double b);

// Sum with Kahan compensation (traces can be long; keep integration exact).
[[nodiscard]] double kahanSum(std::span<const double> xs);

}  // namespace ep
