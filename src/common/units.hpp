// Strong types for the physical quantities the library deals in.
//
// Power/energy/time arithmetic is the core of every experiment in this
// project; mixing up joules and watts (or seconds and watt-hours) is the
// classic bug in energy-measurement code.  These wrappers make the units
// part of the type so the compiler rejects such mixes, while keeping the
// arithmetic that *is* dimensionally valid (W * s = J, J / s = W, ...)
// ergonomic.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace ep {

namespace detail {

// CRTP base providing the arithmetic shared by all scalar unit wrappers.
template <typename Derived>
class UnitBase {
 public:
  constexpr UnitBase() = default;
  constexpr explicit UnitBase(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value()}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value() / s};
  }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value() / b.value();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value() <=> b.value();
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value() == b.value();
  }
  Derived& operator+=(Derived b) {
    value_ += b.value();
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived b) {
    value_ -= b.value();
    return static_cast<Derived&>(*this);
  }

 private:
  double value_ = 0.0;
};

}  // namespace detail

class Seconds : public detail::UnitBase<Seconds> {
 public:
  using UnitBase::UnitBase;
};

class Joules : public detail::UnitBase<Joules> {
 public:
  using UnitBase::UnitBase;
};

class Watts : public detail::UnitBase<Watts> {
 public:
  using UnitBase::UnitBase;
};

// Dimensionally valid cross-unit arithmetic.
[[nodiscard]] constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
[[nodiscard]] constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
[[nodiscard]] constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
[[nodiscard]] constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}

inline std::ostream& operator<<(std::ostream& os, Seconds s) {
  return os << s.value() << " s";
}
inline std::ostream& operator<<(std::ostream& os, Joules j) {
  return os << j.value() << " J";
}
inline std::ostream& operator<<(std::ostream& os, Watts w) {
  return os << w.value() << " W";
}

namespace literals {
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr Joules operator""_J(long double v) {
  return Joules{static_cast<double>(v)};
}
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace ep
