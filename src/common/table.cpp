#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace ep {

std::string formatDouble(double v, int precision) {
  std::ostringstream ss;
  const double mag = std::fabs(v);
  if (v != 0.0 && (mag >= 1e7 || mag < 1e-4)) {
    ss << std::scientific << std::setprecision(precision) << v;
    return ss.str();
  }
  ss << std::fixed << std::setprecision(precision) << v;
  std::string s = ss.str();
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0' &&
           s[s.size() - 2] != '.') {
      s.pop_back();
    }
  }
  return s;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EP_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  EP_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::addRow(std::initializer_list<double> cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(formatNumber(v));
  addRow(std::move(row));
}

std::string Table::formatNumber(double v) const {
  return formatDouble(v, precision_);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto hline = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
       << headers_[c] << " |";
  }
  os << '\n';
  hline();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  }
  hline();
}

std::string Table::str() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void Table::writeCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << "\"\"";
          else os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ep
