// Plain-text table and CSV emission.
//
// Every bench binary regenerates one of the paper's tables or figures as
// rows/series on stdout; Table gives them a single consistent, aligned
// format, and writeCsv provides machine-readable output for re-plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ep {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Add a pre-formatted row; must have exactly as many cells as headers.
  void addRow(std::vector<std::string> cells);

  // Convenience: format doubles with the table's precision.
  void addRow(std::initializer_list<double> cells);

  void setTitle(std::string title) { title_ = std::move(title); }
  void setPrecision(int digits) { precision_ = digits; }

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  // Render with column alignment.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  void writeCsv(std::ostream& os) const;

  // Format a double the way addRow(initializer_list<double>) would.
  [[nodiscard]] std::string formatNumber(double v) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 4;
};

// Shared numeric formatting: fixed for "human" magnitudes, scientific
// outside, trailing-zero trimmed.
[[nodiscard]] std::string formatDouble(double v, int precision);

}  // namespace ep
