#include "common/rng.hpp"

namespace ep {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double sigma) {
  std::normal_distribution<double> dist(mean, sigma);
  return dist(engine_);
}

std::uint64_t Rng::uniformInt(std::uint64_t lo, std::uint64_t hi) {
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

Rng Rng::fork(std::uint64_t salt) const {
  return Rng(splitmix64(seed_ ^ splitmix64(salt)));
}

}  // namespace ep
