#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace ep {

namespace {

// Process-wide pool instrumentation (epobs global registry).  Gauges
// are moved by deltas so several pools aggregate correctly; the
// references are resolved once and shared by every pool.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& busyNs;
  obs::Gauge& queueDepth;
  obs::Gauge& inFlight;
  obs::Counter& parallelFors;
  obs::Counter& parallelChunks;
  obs::Gauge& parallelActive;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().counter(
            "ep_threadpool_tasks_total",
            "Tasks executed by ep::ThreadPool workers (all pools)"),
        obs::Registry::global().counter(
            "ep_threadpool_busy_ns_total",
            "Cumulative nanoseconds workers spent running tasks"),
        obs::Registry::global().gauge(
            "ep_threadpool_queue_depth",
            "Tasks enqueued and not yet picked up by a worker"),
        obs::Registry::global().gauge(
            "ep_threadpool_in_flight",
            "Tasks submitted and not yet finished (queued + running)"),
        obs::Registry::global().counter(
            "ep_threadpool_parallel_for_total",
            "parallelFor/parallelMap invocations (all pools)"),
        obs::Registry::global().counter(
            "ep_threadpool_parallel_chunks_total",
            "Chunks executed across all parallelFor invocations"),
        obs::Registry::global().gauge(
            "ep_threadpool_parallel_active",
            "parallelFor calls currently executing (incl. nested)")};
    return m;
  }
};

}  // namespace

// Per-call completion latch.  Held in a shared_ptr: a helper task that
// wakes up after the caller already returned (every chunk claimed by
// faster participants) must only touch memory it co-owns.
struct ThreadPool::ParallelForState {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t n = 0;
  std::size_t chunks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::atomic<std::size_t> next{0};  // next chunk index to claim
  std::atomic<std::size_t> done{0};  // chunks finished (run or skipped)
  std::atomic<bool> failed{false};

  std::mutex mutex;
  std::condition_variable cvDone;
  std::exception_ptr firstError;
};

void ThreadPool::runChunks(ParallelForState& st) {
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    const std::size_t c = st.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= st.chunks) return;
    // A claimed chunk always counts toward `done`, even when skipped
    // after a failure — completion means "no chunk will run anymore",
    // not "every index ran".
    if (!st.failed.load(std::memory_order_relaxed)) {
      const std::size_t lo = st.begin + c * st.grain;
      const std::size_t hi = std::min(lo + st.grain, st.begin + st.n);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (st.failed.load(std::memory_order_relaxed)) break;
          (*st.fn)(i);
        }
        metrics.parallelChunks.inc();
      } catch (...) {
        std::scoped_lock lock(st.mutex);
        if (!st.failed.exchange(true, std::memory_order_relaxed)) {
          st.firstError = std::current_exception();
        }
      }
    }
    // release pairs with the caller's acquire load of `done`, making
    // fn's writes (and firstError) visible before the caller returns.
    if (st.done.fetch_add(1, std::memory_order_acq_rel) + 1 == st.chunks) {
      // Lock so the notify cannot slip between the waiter's predicate
      // check and its wait — a lost wakeup would hang the caller.
      std::scoped_lock lock(st.mutex);
      st.cvDone.notify_all();
    }
  }
}

ThreadPool::ThreadPool(std::size_t threads, std::string profileLabel)
    : profileLabel_(profileLabel.empty() ? std::string("pool/worker")
                                         : std::move(profileLabel)) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  PoolMetrics::get();  // resolve registry entries before workers start
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::queueDepth() const {
  std::unique_lock lock(mutex_);
  return tasks_.size();
}

std::size_t ThreadPool::inFlight() const {
  std::unique_lock lock(mutex_);
  return inFlight_;
}

void ThreadPool::submit(std::function<void()> task) {
  // Carry the submitter's request context across the pool boundary so
  // spans opened inside the task link into the same trace tree.  Only
  // when tracing is live: the disabled path stays allocation-identical.
  if (obs::Tracer::global().enabled()) {
    if (const obs::TraceContext ctx = obs::currentContext(); ctx.spanId != 0) {
      task = [ctx, inner = std::move(task)] {
        obs::ScopedTraceContext scope(ctx);
        inner();
      };
    }
  }
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  PoolMetrics::get().queueDepth.add(1);
  PoolMetrics::get().inFlight.add(1);
  cvTask_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cvDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  // Root frame + registration for the continuous profiler: pushed
  // unconditionally (thread-lifetime) so arming epprof mid-run still
  // sees every worker labeled; profileLabel_ outlives the worker.
  obs::ProfileThreadLabel profileRoot(profileLabel_.c_str());
  obs::Profiler::global().registerCurrentThread();
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cvTask_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    metrics.queueDepth.sub(1);
    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::Span span("pool/task");
      task();
    }
    metrics.busyNs.inc(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    metrics.tasks.inc();
    {
      std::unique_lock lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) cvDone_.notify_all();
    }
    metrics.inFlight.sub(1);
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // ~4 chunks per worker: enough slack for dynamic load balancing
    // without drowning small ranges in scheduling overhead.
    grain = std::max<std::size_t>(1, n / (4 * size()));
  }
  const std::size_t chunks = (n + grain - 1) / grain;

  PoolMetrics& metrics = PoolMetrics::get();
  metrics.parallelFors.inc();

  if (chunks == 1) {
    // Serial fall-back: run inline.  Same contract as the parallel
    // path — a throw at index i skips all remaining indices and the
    // (first and only) error propagates to the caller.
    metrics.parallelActive.add(1);
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      metrics.parallelChunks.inc();
    } catch (...) {
      metrics.parallelActive.sub(1);
      throw;
    }
    metrics.parallelActive.sub(1);
    return;
  }

  auto st = std::make_shared<ParallelForState>();
  st->begin = begin;
  st->grain = grain;
  st->n = n;
  st->chunks = chunks;
  st->fn = &fn;

  metrics.parallelActive.add(1);
  // The caller claims chunks too, so at most chunks-1 helpers can ever
  // find work; capping at size() keeps the queue shallow.  If no worker
  // is free (all parked in nested calls of their own) the caller simply
  // drains the whole range itself — that is what makes nesting safe.
  const std::size_t helpers = std::min(chunks - 1, size());
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([st] { runChunks(*st); });
  }
  runChunks(*st);
  {
    std::unique_lock lock(st->mutex);
    st->cvDone.wait(lock, [&] {
      return st->done.load(std::memory_order_acquire) == st->chunks;
    });
  }
  metrics.parallelActive.sub(1);
  if (st->firstError) std::rethrow_exception(st->firstError);
}

}  // namespace ep
