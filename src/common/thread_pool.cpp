#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ep {

namespace {

// Process-wide pool instrumentation (epobs global registry).  Gauges
// are moved by deltas so several pools aggregate correctly; the
// references are resolved once and shared by every pool.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& busyNs;
  obs::Gauge& queueDepth;
  obs::Gauge& inFlight;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().counter(
            "ep_threadpool_tasks_total",
            "Tasks executed by ep::ThreadPool workers (all pools)"),
        obs::Registry::global().counter(
            "ep_threadpool_busy_ns_total",
            "Cumulative nanoseconds workers spent running tasks"),
        obs::Registry::global().gauge(
            "ep_threadpool_queue_depth",
            "Tasks enqueued and not yet picked up by a worker"),
        obs::Registry::global().gauge(
            "ep_threadpool_in_flight",
            "Tasks submitted and not yet finished (queued + running)")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  PoolMetrics::get();  // resolve registry entries before workers start
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::queueDepth() const {
  std::unique_lock lock(mutex_);
  return tasks_.size();
}

std::size_t ThreadPool::inFlight() const {
  std::unique_lock lock(mutex_);
  return inFlight_;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  PoolMetrics::get().queueDepth.add(1);
  PoolMetrics::get().inFlight.add(1);
  cvTask_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cvDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cvTask_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    metrics.queueDepth.sub(1);
    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::Span span("pool/task");
      task();
    }
    metrics.busyNs.inc(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    metrics.tasks.inc();
    {
      std::unique_lock lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) cvDone_.notify_all();
    }
    metrics.inFlight.sub(1);
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size());
  std::atomic<bool> failed{false};
  std::exception_ptr firstError;
  std::mutex errMutex;

  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::size_t start = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t lo = start;
    const std::size_t hi = start + len;
    start = hi;
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (failed.load(std::memory_order_relaxed)) return;
          fn(i);
        }
      } catch (...) {
        std::scoped_lock lock(errMutex);
        if (!failed.exchange(true)) firstError = std::current_exception();
      }
    });
  }
  wait();
  if (failed && firstError) std::rethrow_exception(firstError);
}

}  // namespace ep
