#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  cvTask_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cvDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cvTask_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) cvDone_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size());
  std::atomic<bool> failed{false};
  std::exception_ptr firstError;
  std::mutex errMutex;

  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::size_t start = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t lo = start;
    const std::size_t hi = start + len;
    start = hi;
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (failed.load(std::memory_order_relaxed)) return;
          fn(i);
        }
      } catch (...) {
        std::scoped_lock lock(errMutex);
        if (!failed.exchange(true)) firstError = std::current_exception();
      }
    });
  }
  wait();
  if (failed && firstError) std::rethrow_exception(firstError);
}

}  // namespace ep
