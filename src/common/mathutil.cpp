#include "common/mathutil.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ep {

std::uint64_t nextPowerOfTwo(std::uint64_t n) {
  EP_REQUIRE(n >= 1, "nextPowerOfTwo needs n >= 1");
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

unsigned ilog2(std::uint64_t n) {
  EP_REQUIRE(n >= 1, "ilog2 needs n >= 1");
  unsigned r = 0;
  while (n >>= 1) ++r;
  return r;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  EP_REQUIRE(n >= 1, "linspace needs n >= 1");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;
  return out;
}

std::vector<std::uint64_t> divisorsOf(std::uint64_t n) {
  EP_REQUIRE(n >= 1, "divisorsOf needs n >= 1");
  std::vector<std::uint64_t> lo, hi;
  for (std::uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

double clampFinite(double v, double lo, double hi) {
  if (std::isnan(v)) return lo;
  return std::clamp(v, lo, hi);
}

double relativeDifference(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 0.0;
  return std::fabs(a - b) / scale;
}

double kahanSum(std::span<const double> xs) {
  double sum = 0.0, c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace ep
