// Error handling for the epsim library.
//
// Following the C++ Core Guidelines (E.2, E.14) we use exceptions for error
// reporting, with one project exception type per broad failure class so
// callers can catch narrowly.  EP_REQUIRE is for precondition violations on
// public API entry points; it always throws (never compiled out) because the
// library is used from experiment harnesses where silent UB would corrupt
// published numbers.
#pragma once

#include <stdexcept>
#include <string>

namespace ep {

// Base class for all epsim errors.
class EpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A caller violated a documented precondition.
class PreconditionError : public EpError {
 public:
  using EpError::EpError;
};

// An iterative procedure (statistics loop, solver) failed to converge
// within its configured budget.
class ConvergenceError : public EpError {
 public:
  using EpError::EpError;
};

// A simulated hardware resource was exhausted (device memory, shared
// memory per block, ...).
class ResourceError : public EpError {
 public:
  using EpError::EpError;
};

namespace detail {
[[noreturn]] inline void failPrecondition(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace ep

#define EP_REQUIRE(expr, msg)                                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::ep::detail::failPrecondition(#expr, __FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)
