// Deterministic random number generation.
//
// Every stochastic element of the simulation (power-meter noise, utilization
// jitter, measurement repetition) draws from an ep::Rng seeded explicitly by
// the experiment, so that a whole experiment — including its statistics loop —
// is reproducible bit-for-bit.  Streams can be forked so that adding draws in
// one component does not perturb another (a common reproducibility bug).
#pragma once

#include <cstdint>
#include <random>

namespace ep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  // Standard normal scaled: mean + sigma * N(0,1).
  [[nodiscard]] double normal(double mean, double sigma);

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

  // Derive an independent child stream.  Uses splitmix64 over
  // (seed, salt) so forks with different salts are decorrelated.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

// splitmix64 mixing function; exposed for deterministic hashing needs.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

// Chain a field into a fork-salt/hash accumulator.  Unlike shifting
// fields into disjoint bit ranges and XORing (which collides as soon as
// one field outgrows its range — e.g. large R in a (BS,G,R) key), each
// field passes through the full-avalanche mixer, so any change to any
// field changes the whole word.  Build multi-field salts as
//   h = mix64(mix64(mix64(0, a), b), c)
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ splitmix64(v));
}

}  // namespace ep
