// Unit tests for eppower: traces, profiles, the simulated WattsUp meter,
// and the HCLWattsUp-style energy measurer.
#include <gtest/gtest.h>

#include <cmath>

#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "power/measurer.hpp"
#include "power/meter.hpp"
#include "power/observer.hpp"
#include "power/profile.hpp"
#include "power/trace.hpp"

namespace ep::power {
namespace {

using ep::literals::operator""_s;
using ep::literals::operator""_W;
using ep::literals::operator""_J;

// --- trace ---

TEST(Trace, ConstantPowerIntegratesExactly) {
  PowerTrace t;
  for (int i = 0; i <= 10; ++i) {
    t.append({Seconds{static_cast<double>(i)}, 100.0_W});
  }
  EXPECT_DOUBLE_EQ(t.totalEnergy().value(), 1000.0);
  EXPECT_DOUBLE_EQ(t.meanPower().value(), 100.0);
  EXPECT_DOUBLE_EQ(t.duration().value(), 10.0);
}

TEST(Trace, LinearRampIntegratesExactly) {
  // P(t) = 10 t over [0, 10]: energy = 500.
  PowerTrace t;
  for (int i = 0; i <= 10; ++i) {
    t.append({Seconds{static_cast<double>(i)},
              Watts{10.0 * static_cast<double>(i)}});
  }
  EXPECT_DOUBLE_EQ(t.totalEnergy().value(), 500.0);
}

TEST(Trace, WindowedEnergyInterpolatesEdges) {
  PowerTrace t;
  t.append({0.0_s, 100.0_W});
  t.append({10.0_s, 100.0_W});
  EXPECT_DOUBLE_EQ(t.energyBetween(2.5_s, 7.5_s).value(), 500.0);
}

TEST(Trace, ZeroWidthWindowIsZero) {
  PowerTrace t;
  t.append({0.0_s, 100.0_W});
  t.append({10.0_s, 100.0_W});
  EXPECT_DOUBLE_EQ(t.energyBetween(5.0_s, 5.0_s).value(), 0.0);
}

TEST(Trace, PowerAtInterpolates) {
  PowerTrace t;
  t.append({0.0_s, 0.0_W});
  t.append({10.0_s, 100.0_W});
  EXPECT_DOUBLE_EQ(t.powerAt(5.0_s).value(), 50.0);
  EXPECT_DOUBLE_EQ(t.powerAt(0.0_s).value(), 0.0);
  EXPECT_DOUBLE_EQ(t.powerAt(10.0_s).value(), 100.0);
}

TEST(Trace, RejectsNonMonotonicTimestamps) {
  PowerTrace t;
  t.append({1.0_s, 1.0_W});
  EXPECT_THROW(t.append({1.0_s, 2.0_W}), PreconditionError);
  EXPECT_THROW(t.append({0.5_s, 2.0_W}), PreconditionError);
}

TEST(Trace, RejectsWindowOutsideTrace) {
  PowerTrace t;
  t.append({0.0_s, 1.0_W});
  t.append({1.0_s, 1.0_W});
  EXPECT_THROW((void)t.energyBetween(0.0_s, 2.0_s), PreconditionError);
  EXPECT_THROW((void)t.energyBetween(0.5_s, 0.25_s), PreconditionError);
}

TEST(Trace, EmptyTraceThrows) {
  const PowerTrace t;
  EXPECT_THROW((void)t.totalEnergy(), PreconditionError);
  EXPECT_THROW((void)t.startTime(), PreconditionError);
}

// --- profile ---

TEST(Profile, IdleOnlyPower) {
  const ProfilePowerSource p(90.0_W);
  EXPECT_DOUBLE_EQ(p.powerAt(3.0_s).value(), 90.0);
  EXPECT_DOUBLE_EQ(p.exactEnergy(0.0_s, 10.0_s).value(), 900.0);
}

TEST(Profile, SegmentsAddOnTopOfIdle) {
  ProfilePowerSource p(100.0_W);
  p.addSegment({0.0_s, 5.0_s, 50.0_W});
  p.addSegment({2.0_s, 2.0_s, 25.0_W});  // overlaps the first
  EXPECT_DOUBLE_EQ(p.powerAt(1.0_s).value(), 150.0);
  EXPECT_DOUBLE_EQ(p.powerAt(3.0_s).value(), 175.0);
  EXPECT_DOUBLE_EQ(p.powerAt(6.0_s).value(), 100.0);
}

TEST(Profile, ExactEnergyMatchesHandComputation) {
  ProfilePowerSource p(100.0_W);
  p.addSegment({0.0_s, 5.0_s, 50.0_W});
  // 10 s idle (1000 J) + 5 s x 50 W (250 J).
  EXPECT_DOUBLE_EQ(p.exactEnergy(0.0_s, 10.0_s).value(), 1250.0);
}

TEST(Profile, SegmentBoundariesAreHalfOpen) {
  ProfilePowerSource p(0.0_W);
  p.addSegment({1.0_s, 1.0_s, 10.0_W});
  EXPECT_DOUBLE_EQ(p.powerAt(1.0_s).value(), 10.0);
  EXPECT_DOUBLE_EQ(p.powerAt(2.0_s).value(), 0.0);  // end exclusive
}

TEST(Profile, ActivityEndTracksLatestSegment) {
  ProfilePowerSource p(0.0_W);
  EXPECT_DOUBLE_EQ(p.activityEnd().value(), 0.0);
  p.addSegment({0.0_s, 5.0_s, 10.0_W});
  p.addSegment({3.0_s, 4.0_s, 10.0_W});
  EXPECT_DOUBLE_EQ(p.activityEnd().value(), 7.0);
}

TEST(Profile, RejectsNegativeInputs) {
  EXPECT_THROW(ProfilePowerSource{Watts{-1.0}}, PreconditionError);
  ProfilePowerSource p(1.0_W);
  EXPECT_THROW(p.addSegment({Seconds{-1.0}, 1.0_s, 1.0_W}),
               PreconditionError);
  EXPECT_THROW(p.addSegment({0.0_s, 1.0_s, Watts{-5.0}}),
               PreconditionError);
}

TEST(Profile, GenericExactEnergyFallbackAgreesWithClosedForm) {
  // Exercise the base-class midpoint integration against the closed form.
  class Wrapper final : public PowerSource {
   public:
    explicit Wrapper(const ProfilePowerSource& p) : p_(p) {}
    [[nodiscard]] Watts powerAt(Seconds t) const override {
      return p_.powerAt(t);
    }
    const ProfilePowerSource& p_;
  };
  ProfilePowerSource p(50.0_W);
  p.addSegment({1.0_s, 3.0_s, 30.0_W});
  const Wrapper w(p);
  EXPECT_NEAR(w.PowerSource::exactEnergy(0.0_s, 5.0_s).value(),
              p.exactEnergy(0.0_s, 5.0_s).value(), 1.0);
}

// --- meter ---

TEST(Meter, NoiseFreeMeterReproducesProfileEnergy) {
  MeterOptions opts;
  opts.gainNoiseSigma = 0.0;
  opts.additiveNoiseSigma = 0.0_W;
  opts.quantization = 0.0_W;
  opts.randomPhase = false;
  opts.sampleInterval = Seconds{0.01};
  const WattsUpMeter meter(opts);
  ProfilePowerSource p(100.0_W);
  Rng rng(1);
  const PowerTrace trace = meter.record(p, 10.0_s, rng);
  EXPECT_NEAR(trace.totalEnergy().value(), 1000.0, 1.0);
}

TEST(Meter, TraceBracketsTheWindow) {
  const WattsUpMeter meter;
  ProfilePowerSource p(100.0_W);
  Rng rng(2);
  const PowerTrace trace = meter.record(p, 10.0_s, rng);
  EXPECT_DOUBLE_EQ(trace.startTime().value(), 0.0);
  EXPECT_GE(trace.endTime().value(), 10.0);
}

TEST(Meter, SamplesRoughlyAtConfiguredRate) {
  const WattsUpMeter meter;  // 1 Hz
  ProfilePowerSource p(100.0_W);
  Rng rng(3);
  const PowerTrace trace = meter.record(p, 60.0_s, rng);
  EXPECT_NEAR(static_cast<double>(trace.size()), 61.0, 3.0);
}

TEST(Meter, QuantizationRoundsToResolution) {
  MeterOptions opts;
  opts.gainNoiseSigma = 0.0;
  opts.additiveNoiseSigma = 0.0_W;
  opts.quantization = 0.1_W;
  opts.randomPhase = false;
  const WattsUpMeter meter(opts);
  ProfilePowerSource p(Watts{100.037});
  Rng rng(4);
  const PowerTrace trace = meter.record(p, 5.0_s, rng);
  for (const auto& s : trace.samples()) {
    const double scaled = s.power.value() * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

TEST(Meter, NoisyMeterUnbiasedOnAverage) {
  const WattsUpMeter meter;
  ProfilePowerSource p(150.0_W);
  Rng rng(5);
  double sum = 0.0;
  constexpr int kTrials = 50;
  for (int i = 0; i < kTrials; ++i) {
    sum += meter.record(p, 30.0_s, rng).meanPower().value();
  }
  EXPECT_NEAR(sum / kTrials, 150.0, 1.0);
}

TEST(Meter, RejectsBadOptions) {
  MeterOptions opts;
  opts.sampleInterval = Seconds{0.0};
  EXPECT_THROW(WattsUpMeter{opts}, PreconditionError);
}

// --- measurer ---

TEST(Measurer, CalibrationRecoversIdlePower) {
  const WattsUpMeter meter;
  ProfilePowerSource idle(90.0_W);
  Rng rng(6);
  const Watts base =
      EnergyMeasurer::calibrateBasePower(meter, idle, 120.0_s, rng);
  EXPECT_NEAR(base.value(), 90.0, 0.5);
}

TEST(Measurer, DynamicEnergySeparatesIdle) {
  MeterOptions opts;
  opts.gainNoiseSigma = 0.0;
  opts.additiveNoiseSigma = 0.0_W;
  opts.quantization = 0.0_W;
  opts.randomPhase = false;
  opts.sampleInterval = Seconds{0.05};
  const WattsUpMeter meter(opts);
  const EnergyMeasurer measurer(meter, 90.0_W);

  ProfilePowerSource profile(90.0_W);
  profile.addSegment({0.0_s, 10.0_s, 60.0_W});  // 600 J dynamic
  Rng rng(7);
  const EnergyReading r = measurer.measureOnce(profile, 10.0_s, rng);
  EXPECT_NEAR(r.dynamicEnergy.value(), 600.0, 10.0);
  EXPECT_NEAR(r.totalEnergy.value(), 1500.0, 10.0);
  EXPECT_NEAR(r.staticEnergy.value(), 900.0, 1e-9);
}

TEST(Measurer, TailWindowCapturesPostKernelPower) {
  MeterOptions opts;
  opts.gainNoiseSigma = 0.0;
  opts.additiveNoiseSigma = 0.0_W;
  opts.quantization = 0.0_W;
  opts.randomPhase = false;
  opts.sampleInterval = Seconds{0.05};
  const WattsUpMeter meter(opts);
  const EnergyMeasurer measurer(meter, 100.0_W);

  ProfilePowerSource profile(100.0_W);
  profile.addSegment({0.0_s, 5.0_s, 50.0_W});   // kernel
  profile.addSegment({0.0_s, 7.0_s, 58.0_W});   // uncore + 2 s tail
  Rng rng(8);
  const EnergyReading withTail =
      measurer.measureOnce(profile, 5.0_s, rng, 2.0_s);
  const EnergyReading withoutTail =
      measurer.measureOnce(profile, 5.0_s, rng, 0.0_s);
  // Tail window adds the 2 s x 58 W uncore decay to dynamic energy.
  EXPECT_NEAR(withTail.dynamicEnergy.value() -
                  withoutTail.dynamicEnergy.value(),
              116.0, 10.0);
}

TEST(Measurer, FullProtocolConvergesAndMatchesGroundTruth) {
  const WattsUpMeter meter;  // realistic noise
  const EnergyMeasurer measurer(meter, 90.0_W);
  ProfilePowerSource profile(90.0_W);
  profile.addSegment({0.0_s, 20.0_s, 80.0_W});  // 1600 J dynamic
  Rng rng(9);
  const MeasuredEnergy m = measurer.measure(profile, 20.0_s, rng);
  EXPECT_TRUE(m.dynamicEnergyStats.converged);
  EXPECT_NEAR(m.mean.dynamicEnergy.value(), 1600.0, 80.0);
  EXPECT_NEAR(m.mean.executionTime.value(), 20.0, 0.1);
  // The paper's criterion: achieved precision within 2.5 %.
  EXPECT_LE(m.dynamicEnergyStats.interval.precision(), 0.025);
}

TEST(Measurer, NegativeDynamicEnergyClampedToZero) {
  MeterOptions opts;
  opts.gainNoiseSigma = 0.0;
  opts.additiveNoiseSigma = 0.0_W;
  opts.quantization = 0.0_W;
  const WattsUpMeter meter(opts);
  // Mis-calibrated base ABOVE actual power: dynamic would be negative.
  const EnergyMeasurer measurer(meter, 200.0_W);
  ProfilePowerSource profile(90.0_W);
  Rng rng(10);
  const EnergyReading r = measurer.measureOnce(profile, 5.0_s, rng);
  EXPECT_GE(r.dynamicEnergy.value(), 0.0);
}

TEST(Measurer, RejectsInvalidWindows) {
  const WattsUpMeter meter;
  const EnergyMeasurer measurer(meter, 90.0_W);
  ProfilePowerSource profile(90.0_W);
  Rng rng(11);
  EXPECT_THROW((void)measurer.measureOnce(profile, 0.0_s, rng),
               PreconditionError);
  EXPECT_THROW(
      (void)measurer.measureOnce(profile, 1.0_s, rng, Seconds{-1.0}),
      PreconditionError);
  EXPECT_THROW((void)measurer.measureOnce(profile, Seconds{-2.0}, rng),
               PreconditionError);
  EXPECT_THROW((void)measurer.measure(profile, 0.0_s, rng),
               PreconditionError);
}

// --- trace validation ---

PowerTrace regularTrace(int n, double power = 100.0) {
  PowerTrace t;
  for (int i = 0; i < n; ++i) {
    t.append({Seconds{static_cast<double>(i)},
              Watts{power + 0.1 * static_cast<double>(i % 7)}});
  }
  return t;
}

TEST(Validation, AcceptsARegularTrace) {
  const PowerTrace t = regularTrace(20);
  const char* reason = nullptr;
  EXPECT_TRUE(validateTrace(t, TraceValidation{}, &reason));
  EXPECT_STREQ(reason, "ok");
}

TEST(Validation, FlagsEmptyAndNonFiniteTraces) {
  const char* reason = nullptr;
  EXPECT_FALSE(validateTrace(PowerTrace{}, TraceValidation{}, &reason));
  EXPECT_STREQ(reason, "empty trace");
  PowerTrace t = regularTrace(5);
  t.append({Seconds{100.0}, Watts{std::nan("")}});
  EXPECT_FALSE(validateTrace(t, TraceValidation{}, &reason));
  EXPECT_STREQ(reason, "non-finite reading");
}

TEST(Validation, FlagsSamplingGapsAgainstTheMedianInterval) {
  PowerTrace t = regularTrace(10);              // 1 s cadence
  t.append({Seconds{14.0}, 100.0_W});           // 5 s gap
  TraceValidation v;
  v.maxGapFactor = 2.6;
  const char* reason = nullptr;
  EXPECT_FALSE(validateTrace(t, v, &reason));
  EXPECT_STREQ(reason, "sampling gap");
  v.maxGapFactor = 6.0;  // tolerant enough for the same gap
  EXPECT_TRUE(validateTrace(t, v, &reason));
}

TEST(Validation, FlagsStuckRuns) {
  PowerTrace t;
  for (int i = 0; i < 10; ++i) {
    // Identical readings from sample 3 on.
    t.append({Seconds{static_cast<double>(i)},
              Watts{i < 3 ? 100.0 + i : 97.5}});
  }
  TraceValidation v;
  v.stuckRunLength = 5;
  const char* reason = nullptr;
  EXPECT_FALSE(validateTrace(t, v, &reason));
  EXPECT_STREQ(reason, "stuck reading");
  v.stuckRunLength = 8;
  EXPECT_TRUE(validateTrace(t, v, &reason));
}

// --- per-sample sanitization ---

TEST(Sanitize, CleanTraceIsUntouched) {
  PowerTrace t = regularTrace(10);
  EXPECT_EQ(sanitizeTrace(t), 0u);
  EXPECT_EQ(t.size(), 10u);
}

TEST(Sanitize, DropsInteriorImpossibleReadings) {
  PowerTrace t;
  t.append({0.0_s, 100.0_W});
  t.append({1.0_s, Watts{std::nan("")}});
  t.append({2.0_s, 0.0_W});
  t.append({3.0_s, Watts{-5.0}});
  t.append({4.0_s, 100.0_W});
  EXPECT_EQ(sanitizeTrace(t), 3u);
  ASSERT_EQ(t.size(), 2u);
  // The trapezoid bridges the gap at the clean readings' level.
  EXPECT_DOUBLE_EQ(t.energyBetween(0.0_s, 4.0_s).value(), 400.0);
}

TEST(Sanitize, RepairsCorruptedBracketingSamples) {
  PowerTrace t;
  t.append({0.0_s, Watts{std::nan("")}});
  t.append({1.0_s, 100.0_W});
  t.append({2.0_s, 100.0_W});
  t.append({3.0_s, 0.0_W});
  EXPECT_EQ(sanitizeTrace(t), 2u);
  // The window endpoints survive at the nearest good reading, so
  // energyBetween over the full window keeps working.
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.startTime().value(), 0.0);
  EXPECT_DOUBLE_EQ(t.endTime().value(), 3.0);
  EXPECT_DOUBLE_EQ(t.energyBetween(0.0_s, 3.0_s).value(), 300.0);
}

TEST(Sanitize, AllBadLeavesAnEmptyTrace) {
  PowerTrace t;
  t.append({0.0_s, Watts{std::nan("")}});
  t.append({1.0_s, 0.0_W});
  EXPECT_EQ(sanitizeTrace(t), 2u);
  EXPECT_TRUE(t.empty());
}

TEST(Sanitize, PlausibilityCeilingDropsSpikes) {
  PowerTrace t;
  t.append({0.0_s, 100.0_W});
  t.append({1.0_s, 400.0_W});  // 4x spike above the node's PSU rating
  t.append({2.0_s, 100.0_W});
  // Without a ceiling the spike is a legitimate (finite, positive)
  // reading; with one it is dropped like any impossible sample.
  PowerTrace copy = t;
  EXPECT_EQ(sanitizeTrace(copy), 0u);
  EXPECT_EQ(sanitizeTrace(t, /*maxPlausibleWatts=*/350.0), 1u);
  EXPECT_DOUBLE_EQ(t.energyBetween(0.0_s, 2.0_s).value(), 200.0);
}

// --- measurement observer seam ---

class RecordingObserver : public MeasureObserver {
 public:
  struct Window {
    std::string scope;
    double observedJ, expectedJ, staticJ, windowS;
    std::uint64_t traceId;
  };
  struct Result {
    std::string scope;
    bool converged;
    double precision;
  };

  void onMeasureWindow(const MeasureWindowObservation& o) override {
    std::lock_guard lk(mu_);
    windows_.push_back(
        {o.scope, o.observedJ, o.expectedJ, o.staticJ, o.windowS, o.traceId});
  }
  void onMeasurementResult(const char* scope, bool converged,
                           double precision) override {
    std::lock_guard lk(mu_);
    results_.push_back({scope, converged, precision});
  }

  std::vector<Window> windows() const {
    std::lock_guard lk(mu_);
    return windows_;
  }
  std::vector<Result> results() const {
    std::lock_guard lk(mu_);
    return results_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Window> windows_;
  std::vector<Result> results_;
};

// Installs/uninstalls around each test so a thrown assertion cannot
// leave a dangling process-global observer behind.
struct ObserverGuard {
  explicit ObserverGuard(MeasureObserver* o) { setMeasureObserver(o); }
  ~ObserverGuard() { setMeasureObserver(nullptr); }
};

TEST(Observer, ScopeLabelNestsAndRestores) {
  EXPECT_STREQ(MeasureScopeLabel::current(), "");
  {
    MeasureScopeLabel outer("outer");
    EXPECT_STREQ(MeasureScopeLabel::current(), "outer");
    {
      MeasureScopeLabel inner("inner");
      EXPECT_STREQ(MeasureScopeLabel::current(), "inner");
    }
    EXPECT_STREQ(MeasureScopeLabel::current(), "outer");
  }
  EXPECT_STREQ(MeasureScopeLabel::current(), "");
}

TEST(Observer, MeasurerFeedsWindowsAndVerdictToTheObserver) {
  RecordingObserver rec;
  ObserverGuard guard(&rec);

  MeterOptions mopts;
  mopts.gainNoiseSigma = 0.0;
  mopts.additiveNoiseSigma = 0.0_W;
  mopts.quantization = 0.0_W;
  mopts.randomPhase = false;
  mopts.sampleInterval = Seconds{0.05};
  const WattsUpMeter meter(mopts);
  const EnergyMeasurer measurer(meter, 90.0_W);
  ProfilePowerSource profile(90.0_W);
  profile.addSegment({0.0_s, 10.0_s, 60.0_W});
  Rng rng(21);
  {
    MeasureScopeLabel scope("TestDevice");
    obs::ScopedTraceContext ctx(obs::TraceContext{0xF00Du, 1u});
    (void)measurer.measure(profile, 10.0_s, rng);
  }

  const auto windows = rec.windows();
  ASSERT_GE(windows.size(), 2u);  // the CI protocol repeats the window
  for (const auto& w : windows) {
    EXPECT_EQ(w.scope, "TestDevice");
    EXPECT_GT(w.windowS, 0.0);
    // Noise-free meter: the observed window energy matches the profile
    // expectation, so the watchdog's residual decomposes to ~0 W.
    EXPECT_NEAR(w.observedJ, w.expectedJ, 5.0);
    EXPECT_NEAR(w.staticJ, 90.0 * w.windowS, 5.0);
    EXPECT_EQ(w.traceId, 0xF00Du);
  }
  const auto results = rec.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].scope, "TestDevice");
  EXPECT_TRUE(results[0].converged);
  EXPECT_GE(results[0].precision, 0.0);
}

TEST(Observer, UninstalledObserverMeasuresNormally) {
  ASSERT_EQ(measureObserver(), nullptr);
  const WattsUpMeter meter;
  const EnergyMeasurer measurer(meter, 90.0_W);
  ProfilePowerSource profile(90.0_W);
  profile.addSegment({0.0_s, 10.0_s, 60.0_W});
  Rng rng(22);
  const MeasuredEnergy m = measurer.measure(profile, 10.0_s, rng);
  EXPECT_NEAR(m.mean.dynamicEnergy.value(), 600.0, 60.0);
}

}  // namespace
}  // namespace ep::power
