// Unit tests for epstats: descriptive statistics, distributions, the
// paper's measurement protocol, the chi-squared normality test, and
// regression.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/chisq.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/regression.hpp"
#include "stats/ttest.hpp"

namespace ep::stats {
namespace {

// --- descriptive ---

TEST(RunningStats, MatchesBatchFormulas) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.variance(), sampleVariance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(Descriptive, MeanOfEmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), PreconditionError);
}

TEST(Descriptive, MedianOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Descriptive, QuantileBounds) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

// --- distributions ---

TEST(Distributions, NormalCdfKnownValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(Distributions, StudentTCdfSymmetry) {
  for (double dof : {1.0, 5.0, 30.0}) {
    for (double t : {0.5, 1.0, 2.5}) {
      EXPECT_NEAR(studentTCdf(t, dof) + studentTCdf(-t, dof), 1.0, 1e-10);
    }
  }
}

TEST(Distributions, StudentTCriticalKnownValues) {
  // Classic t-table values.
  EXPECT_NEAR(studentTCritical(0.95, 4), 2.776, 1e-3);
  EXPECT_NEAR(studentTCritical(0.95, 9), 2.262, 1e-3);
  EXPECT_NEAR(studentTCritical(0.95, 29), 2.045, 1e-3);
  EXPECT_NEAR(studentTCritical(0.99, 9), 3.250, 1e-3);
}

TEST(Distributions, StudentTApproachesNormalForLargeDof) {
  EXPECT_NEAR(studentTCritical(0.95, 10000), 1.960, 2e-3);
}

TEST(Distributions, ChiSquaredCdfKnownValues) {
  // chi2 with k dof has mean k; CDF at 0 is 0.
  EXPECT_DOUBLE_EQ(chiSquaredCdf(0.0, 5.0), 0.0);
  EXPECT_NEAR(chiSquaredCdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(chiSquaredCdf(11.070, 5.0), 0.95, 1e-3);
}

TEST(Distributions, ChiSquaredCriticalInvertsCdf) {
  for (double dof : {1.0, 4.0, 9.0}) {
    const double c = chiSquaredCritical(0.05, dof);
    EXPECT_NEAR(chiSquaredCdf(c, dof), 0.95, 1e-9);
  }
}

TEST(Distributions, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x (uniform distribution).
  EXPECT_NEAR(regularizedIncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-10);
}

TEST(Distributions, IncompleteGammaEdges) {
  EXPECT_DOUBLE_EQ(regularizedLowerGamma(2.0, 0.0), 0.0);
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(regularizedLowerGamma(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
}

TEST(Distributions, InvalidArgumentsThrow) {
  EXPECT_THROW((void)studentTCritical(1.5, 5.0), PreconditionError);
  EXPECT_THROW((void)studentTCritical(0.95, 0.0), PreconditionError);
  EXPECT_THROW((void)regularizedIncompleteBeta(-1.0, 1.0, 0.5),
               PreconditionError);
  EXPECT_THROW((void)chiSquaredCdf(1.0, -2.0), PreconditionError);
}

// --- confidence intervals & protocol ---

TEST(ConfidenceInterval, KnownHandComputedCase) {
  // n=5, mean 10, sd 1 => half width = 2.776 * 1 / sqrt(5).
  const std::vector<double> xs{9.0, 9.5, 10.0, 10.5, 11.0};
  const auto ci = meanConfidenceInterval(xs, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  const double sd = sampleStddev(xs);
  EXPECT_NEAR(ci.halfWidth, 2.776 * sd / std::sqrt(5.0), 1e-3);
  EXPECT_LT(ci.lower(), ci.mean);
  EXPECT_GT(ci.upper(), ci.mean);
}

TEST(MeasurementProtocol, ConvergesOnLowNoiseObservable) {
  Rng rng(5);
  MeasurementOptions opts;
  const MeasurementProtocol protocol(opts);
  const auto res = protocol.run([&] { return rng.normal(100.0, 0.5); });
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.repetitions, opts.minRepetitions);
  EXPECT_NEAR(res.mean, 100.0, 1.0);
  EXPECT_LE(res.interval.precision(), opts.precision);
}

TEST(MeasurementProtocol, PaperParametersAreDefault) {
  const MeasurementProtocol protocol;
  EXPECT_DOUBLE_EQ(protocol.options().confidence, 0.95);   // paper: 95 % CI
  EXPECT_DOUBLE_EQ(protocol.options().precision, 0.025);   // paper: 2.5 %
}

TEST(MeasurementProtocol, ThrowsWhenNoiseTooLargeForBudget) {
  Rng rng(5);
  MeasurementOptions opts;
  opts.maxRepetitions = 6;
  const MeasurementProtocol protocol(opts);
  EXPECT_THROW(
      (void)protocol.run([&] { return rng.normal(10.0, 50.0); }),
      ConvergenceError);
}

TEST(MeasurementProtocol, BestEffortReturnsNonConverged) {
  Rng rng(5);
  MeasurementOptions opts;
  opts.maxRepetitions = 6;
  const MeasurementProtocol protocol(opts);
  const auto res =
      protocol.runBestEffort([&] { return rng.normal(10.0, 50.0); });
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.repetitions, opts.maxRepetitions);
}

TEST(MeasurementProtocol, NoiseFreeObservableConvergesAtMinReps) {
  const MeasurementProtocol protocol;
  const auto res = protocol.run([] { return 42.0; });
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.repetitions, protocol.options().minRepetitions);
  EXPECT_DOUBLE_EQ(res.mean, 42.0);
}

TEST(MeasurementProtocol, RunsNormalityCheckWhenEnoughSamples) {
  Rng rng(17);
  MeasurementOptions opts;
  opts.precision = 0.001;  // force many repetitions
  opts.maxRepetitions = 200;
  const MeasurementProtocol protocol(opts);
  const auto res =
      protocol.runBestEffort([&] { return rng.normal(50.0, 2.0); });
  EXPECT_GE(res.samples.size(), 8u);
  EXPECT_TRUE(res.normalityChecked);
  // Gaussian data should (almost always, with this seed) not be rejected.
  EXPECT_FALSE(res.normality.rejected);
}

TEST(MeasurementProtocol, RejectsBadOptions) {
  MeasurementOptions opts;
  opts.minRepetitions = 1;
  EXPECT_THROW(MeasurementProtocol{opts}, PreconditionError);
  opts.minRepetitions = 10;
  opts.maxRepetitions = 5;
  EXPECT_THROW(MeasurementProtocol{opts}, PreconditionError);
}

// --- chi-squared normality ---

TEST(ChiSquared, AcceptsGaussianSample) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const auto r = pearsonNormalityTest(xs, 0.05);
  EXPECT_FALSE(r.rejected);
  EXPECT_GT(r.pValue, 0.05);
}

TEST(ChiSquared, RejectsStronglyBimodalSample) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back((i % 2 == 0 ? -5.0 : 5.0) + rng.normal(0.0, 0.1));
  }
  const auto r = pearsonNormalityTest(xs, 0.05);
  EXPECT_TRUE(r.rejected);
}

TEST(ChiSquared, SmallSampleIsInconclusiveNotRejected) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto r = pearsonNormalityTest(xs, 0.05);
  EXPECT_FALSE(r.rejected);
  EXPECT_EQ(r.dof, 0.0);
}

TEST(ChiSquared, DegenerateSampleNotRejected) {
  const std::vector<double> xs(20, 7.0);
  const auto r = pearsonNormalityTest(xs, 0.05);
  EXPECT_FALSE(r.rejected);
}

TEST(ChiSquared, GoodnessOfFitExactMatchHasZeroStatistic) {
  const std::vector<double> obs{10.0, 10.0, 10.0, 10.0};
  const std::vector<double> exp{10.0, 10.0, 10.0, 10.0};
  const auto r = pearsonGoodnessOfFit(obs, exp, 1, 0.05);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_FALSE(r.rejected);
}

TEST(ChiSquared, GoodnessOfFitValidatesInput) {
  const std::vector<double> obs{10.0, 10.0};
  const std::vector<double> expShort{10.0};
  EXPECT_THROW((void)pearsonGoodnessOfFit(obs, expShort, 1, 0.05),
               PreconditionError);
  const std::vector<double> expZero{10.0, 0.0};
  EXPECT_THROW((void)pearsonGoodnessOfFit(obs, expZero, 1, 0.05),
               PreconditionError);
}

// --- regression ---

TEST(Regression, ExactLineRecovered) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 + 2.0 * xi);
  const auto f = fitLinear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Regression, ProportionalFitThroughOrigin) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 4.0, 6.0};
  const auto f = fitProportional(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.intercept, 0.0);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Regression, ProportionalFitPenalizedByIntercept) {
  // Strongly affine data: proportional fit must have visibly worse r2.
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{101.0, 102.0, 103.0, 104.0};
  const auto prop = fitProportional(x, y);
  const auto affine = fitLinear(x, y);
  EXPECT_GT(affine.r2, prop.r2);
  EXPECT_NEAR(affine.r2, 1.0, 1e-12);
}

TEST(Regression, MultiLinearRecoversPlane) {
  // y = 2 a + 3 b + 1.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(0.0, 10.0);
    rows.push_back({a, b});
    y.push_back(2.0 * a + 3.0 * b + 1.0);
  }
  const auto f = fitMultiLinear(rows, y, true);
  EXPECT_NEAR(f.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(f.coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Regression, MultiLinearThroughOrigin) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(10);
  for (int i = 0; i < 30; ++i) {
    const double a = rng.uniform(1.0, 10.0);
    rows.push_back({a});
    y.push_back(5.0 * a);
  }
  const auto f = fitMultiLinear(rows, y, false);
  EXPECT_NEAR(f.coefficients[0], 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.intercept, 0.0);
}

TEST(Regression, MultiLinearRejectsCollinear) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 10; ++i) {
    rows.push_back({static_cast<double>(i), static_cast<double>(2 * i)});
    y.push_back(i);
  }
  EXPECT_THROW((void)fitMultiLinear(rows, y, true), PreconditionError);
}

TEST(Regression, PredictValidatesWidth) {
  MultiLinearFit f;
  f.coefficients = {1.0, 2.0};
  const std::vector<double> tooShort{1.0};
  EXPECT_THROW((void)f.predict(tooShort), PreconditionError);
}

TEST(Regression, PearsonCorrelationExtremes) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearsonCorrelation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(pearsonCorrelation(x, down), -1.0, 1e-12);
}

TEST(Regression, ConstantSeriesCorrelationThrows) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_THROW((void)pearsonCorrelation(x, c), PreconditionError);
}

}  // namespace
}  // namespace ep::stats

// --- Welch two-sample t-test (appended with the tuner-support API) ---

namespace ep::stats {
namespace {

TEST(Welch, DetectsClearlySeparatedMeans) {
  Rng rng(31);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.normal(10.0, 0.5));
    b.push_back(rng.normal(12.0, 0.8));
  }
  const auto r = welchTTest(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_LT(r.pValue, 0.001);
  EXPECT_LT(r.meanDifference, 0.0);
}

TEST(Welch, RarelyRejectsIdenticalDistributions) {
  // alpha = 0.05 means ~5 % false positives; over 40 seeded trials the
  // rejection count must stay near that rate, not explode.
  Rng rng(32);
  int rejections = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 30; ++i) {
      a.push_back(rng.normal(10.0, 1.0));
      b.push_back(rng.normal(10.0, 1.0));
    }
    if (welchTTest(a, b).significant) ++rejections;
  }
  EXPECT_LE(rejections, 6);
}

TEST(Welch, HandlesUnequalVariancesAndSizes) {
  Rng rng(33);
  std::vector<double> a, b;
  for (int i = 0; i < 8; ++i) a.push_back(rng.normal(5.0, 0.1));
  for (int i = 0; i < 50; ++i) b.push_back(rng.normal(5.5, 3.0));
  const auto r = welchTTest(a, b);
  // Welch-Satterthwaite dof must be positive and below the pooled dof.
  EXPECT_GT(r.dof, 1.0);
  EXPECT_LT(r.dof, 56.0);
}

TEST(Welch, NoiseFreeSamples) {
  const std::vector<double> a{5.0, 5.0, 5.0};
  const std::vector<double> same{5.0, 5.0};
  const std::vector<double> other{6.0, 6.0};
  EXPECT_FALSE(welchTTest(a, same).significant);
  EXPECT_TRUE(welchTTest(a, other).significant);
}

TEST(Welch, RejectsTinySamples) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)welchTTest(one, two), PreconditionError);
}

}  // namespace
}  // namespace ep::stats
