// epfleet tests: consistent-hash ring properties (balance, minimal
// remapping), routing-policy scoring, and the FleetRouter end to end —
// energy-aware cache affinity, cross-shard stale serving after a shard
// kill, ring-rebalance front consistency, the EWMA price table, and a
// concurrent mixed-traffic storm for TSan.  Everything runs in-process
// against a controllable fake engine (no sockets).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "pareto/front.hpp"
#include "pareto/tradeoff.hpp"
#include "fleet/policy.hpp"
#include "fleet/ring.hpp"
#include "fleet/router.hpp"
#include "serve/broker.hpp"
#include "serve/wire.hpp"

namespace ep::fleet {
namespace {

using serve::Device;

pareto::BiPoint mk(double t, double e, std::uint64_t id) {
  pareto::BiPoint p;
  p.time = Seconds{t};
  p.energy = Joules{e};
  p.configId = id;
  p.label = "cfg" + std::to_string(id);
  return p;
}

// Deterministic counting engine with a per-device cost multiplier so
// tests can make one device measurably cheaper than the other.
class FleetFakeEngine : public serve::TuningEngine {
 public:
  explicit FleetFakeEngine(double k40cMultiplier = 1.0)
      : k40cMultiplier_(k40cMultiplier) {}

  std::uint64_t tuningHash(Device d) const override {
    return 0xF1EE7u + static_cast<std::uint64_t>(d);
  }

  core::WorkloadResult evaluate(Device d, int n,
                                ThreadPool*) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    perDevice_[d == Device::K40c ? 1 : 0].fetch_add(
        1, std::memory_order_relaxed);
    const double mult = d == Device::K40c ? k40cMultiplier_ : 1.0;
    core::WorkloadResult r;
    r.n = n;
    // Deterministic energy ledger: (0.01*n + 2) * mult joules total, so
    // attributeEnergy() prices the cold study predictably.
    apps::GpuDataPoint d1;
    d1.dynamicEnergy = Joules{0.01 * n * mult};
    d1.repetitions = 3;
    d1.remeasures = 1;
    apps::GpuDataPoint d2;
    d2.dynamicEnergy = Joules{2.0 * mult};
    d2.repetitions = 2;
    r.data = {d1, d2};
    const double s = 1.0 + static_cast<double>(n) * 1e-4 +
                     (d == Device::K40c ? 0.01 : 0.0);
    r.points = {mk(1.0 * s, 10.0, 0), mk(1.1 * s, 7.0, 1),
                mk(1.5 * s, 4.0, 2), mk(2.0 * s, 3.5, 3)};
    r.globalFront = pareto::paretoFront(r.points);
    r.localFront = pareto::localFront(r.points, 2);
    r.globalTradeoff = pareto::analyzeTradeoff(r.points);
    if (!r.localFront.empty()) {
      r.localTradeoff = pareto::analyzeTradeoff(r.localFront);
    }
    return r;
  }

  int calls() const { return calls_.load(std::memory_order_relaxed); }
  int calls(Device d) const {
    return perDevice_[d == Device::K40c ? 1 : 0].load(
        std::memory_order_relaxed);
  }

 private:
  double k40cMultiplier_;
  mutable std::atomic<int> calls_{0};
  mutable std::array<std::atomic<int>, 2> perDevice_{};
};

std::vector<FleetShardConfig> shardConfigs(
    const std::shared_ptr<const serve::TuningEngine>& engine, int count,
    std::size_t threads = 2) {
  std::vector<FleetShardConfig> cfgs;
  for (int i = 0; i < count; ++i) {
    FleetShardConfig c;
    c.id = "s" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = threads;
    c.broker.queueCapacity = 256;
    cfgs.push_back(std::move(c));
  }
  return cfgs;
}

FleetRequest freq(int n, Device d = Device::P100, double budget = 0.5) {
  FleetRequest r;
  r.device = d;
  r.n = n;
  r.maxDegradation = budget;
  return r;
}

// --- consistent-hash ring ---

// Satellite property: with 64 vnodes/shard, key ownership across three
// shards stays within +-20% of the even split.
TEST(Ring, BalanceWithin20Percent) {
  HashRing ring(64);
  ring.addShard("s0");
  ring.addShard("s1");
  ring.addShard("s2");
  std::map<std::string, int> owned;
  int total = 0;
  for (int n = 1; n <= 12000; ++n) {
    for (Device d : {Device::P100, Device::K40c}) {
      ++owned[ring.shardFor(ringKeyHash(d, n))];
      ++total;
    }
  }
  ASSERT_EQ(owned.size(), 3u);
  const double expected = total / 3.0;
  for (const auto& [id, count] : owned) {
    EXPECT_GT(count, expected * 0.8) << id;
    EXPECT_LT(count, expected * 1.2) << id;
  }
}

// Satellite property: removing one of N shards remaps only the keys it
// owned (~1/N), and every other key keeps its owner.
TEST(Ring, SingleShardRemovalRemapsAtMostItsShare) {
  constexpr int kShards = 5;
  HashRing ring(64);
  for (int i = 0; i < kShards; ++i) ring.addShard("s" + std::to_string(i));

  std::vector<std::uint64_t> keys;
  for (int n = 1; n <= 10000; ++n) {
    keys.push_back(ringKeyHash(Device::P100, n));
    keys.push_back(ringKeyHash(Device::K40c, n));
  }
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (auto k : keys) before.push_back(ring.shardFor(k));

  HashRing after = ring;
  after.removeShard("s2");
  int moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string& now = after.shardFor(keys[i]);
    if (now != before[i]) {
      // Only keys the removed shard owned may move.
      EXPECT_EQ(before[i], "s2");
      ++moved;
    } else {
      EXPECT_NE(before[i], "s2");
    }
  }
  // Everything s2 owned moved somewhere...
  const auto s2Owned = static_cast<int>(
      std::count(before.begin(), before.end(), "s2"));
  EXPECT_EQ(moved, s2Owned);
  // ...and that share is about 1/N of the space (balance bound again).
  EXPECT_LT(moved, static_cast<int>(keys.size()) * 1.2 / kShards);

  // Re-adding the shard restores the exact original partition
  // (vnode positions depend only on the id).
  after.addShard("s2");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(after.shardFor(keys[i]), before[i]);
  }
}

TEST(Ring, PreferenceOrderStartsAtOwnerAndIsDistinct) {
  HashRing ring(64);
  for (int i = 0; i < 4; ++i) ring.addShard("s" + std::to_string(i));
  for (int n : {7, 512, 9999, 123456}) {
    const auto key = ringKeyHash(Device::P100, n);
    const auto pref = ring.preferenceOrder(key, 4);
    ASSERT_EQ(pref.size(), 4u);
    EXPECT_EQ(pref[0], ring.shardFor(key));
    EXPECT_EQ(std::set<std::string>(pref.begin(), pref.end()).size(), 4u);
  }
  EXPECT_EQ(ring.preferenceOrder(1234, 2).size(), 2u);
  EXPECT_EQ(ring.preferenceOrder(1234, 99).size(), 4u);
}

TEST(Ring, EditsAreIdempotentAndEmptyRingIsSane) {
  HashRing ring(8);
  EXPECT_EQ(ring.shardFor(42), "");
  EXPECT_TRUE(ring.preferenceOrder(42, 3).empty());
  ring.addShard("a");
  ring.addShard("a");
  EXPECT_EQ(ring.shardCount(), 1u);
  ring.removeShard("missing");
  EXPECT_EQ(ring.shardCount(), 1u);
  ring.removeShard("a");
  EXPECT_EQ(ring.shardCount(), 0u);
  EXPECT_EQ(ring.shardFor(42), "");
}

TEST(Ring, DeterministicAcrossInstances) {
  HashRing a(32);
  HashRing b(32);
  for (const char* id : {"alpha", "beta", "gamma"}) {
    a.addShard(id);
    b.addShard(id);
  }
  for (int n = 1; n <= 500; ++n) {
    const auto key = ringKeyHash(Device::K40c, n);
    EXPECT_EQ(a.shardFor(key), b.shardFor(key));
  }
}

// --- policies ---

TEST(Policy, ParseAndNameRoundTrip) {
  EXPECT_EQ(parsePolicy("rr"), PolicyKind::RoundRobin);
  EXPECT_EQ(parsePolicy("round-robin"), PolicyKind::RoundRobin);
  EXPECT_EQ(parsePolicy("queue"), PolicyKind::QueueDepth);
  EXPECT_EQ(parsePolicy("energy"), PolicyKind::EnergyAware);
  EXPECT_EQ(parsePolicy("energy-aware"), PolicyKind::EnergyAware);
  EXPECT_FALSE(parsePolicy("bogus").has_value());
  for (PolicyKind k : {PolicyKind::RoundRobin, PolicyKind::QueueDepth,
                       PolicyKind::EnergyAware}) {
    EXPECT_EQ(parsePolicy(policyName(k)), k);
  }
}

TEST(Policy, EnergyAwarePrefersHomeAtEqualLoad) {
  PolicyWeights w;
  CandidateSnapshot home;
  home.index = 0;
  home.preference = 0;
  home.inFlight = 1;
  CandidateSnapshot away = home;
  away.index = 1;
  away.preference = 1;
  away.expectedJoules = 25.0;
  EXPECT_LT(scoreCandidate(PolicyKind::EnergyAware, w, home),
            scoreCandidate(PolicyKind::EnergyAware, w, away));
  // Queue-depth scoring cannot tell them apart.
  EXPECT_EQ(scoreCandidate(PolicyKind::QueueDepth, w, home),
            scoreCandidate(PolicyKind::QueueDepth, w, away));
  const auto pick = pickCandidate(PolicyKind::EnergyAware, w, {home, away}, 7);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
}

TEST(Policy, QueuePressureOvercomesEnergyPrice) {
  // A deeply backlogged home loses to an idle overflow shard even
  // after paying the cold-study price.
  PolicyWeights w;
  CandidateSnapshot home;
  home.preference = 0;
  home.inFlight = 100;
  CandidateSnapshot away;
  away.index = 1;
  away.preference = 1;
  away.inFlight = 0;
  away.expectedJoules = 25.0;
  const auto pick = pickCandidate(PolicyKind::EnergyAware, w, {home, away}, 0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(Policy, OpenBreakerIsLastResort) {
  PolicyWeights w;
  CandidateSnapshot a;
  a.index = 0;
  a.breakerOpen = true;
  CandidateSnapshot b;
  b.index = 1;
  b.preference = 3;
  b.inFlight = 50;
  b.expectedJoules = 100.0;
  for (PolicyKind k : {PolicyKind::QueueDepth, PolicyKind::EnergyAware}) {
    const auto pick = pickCandidate(k, w, {a, b}, 0);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u) << policyName(k);
  }
  // ...but a breaker alone never makes a shard unroutable.
  b.alive = false;
  const auto pick = pickCandidate(PolicyKind::QueueDepth, w, {a, b}, 0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
}

TEST(Policy, RoundRobinRotatesAndSkipsDead) {
  PolicyWeights w;
  std::vector<CandidateSnapshot> cands(3);
  for (std::size_t i = 0; i < cands.size(); ++i) cands[i].index = i;
  for (std::size_t r = 0; r < 9; ++r) {
    const auto pick = pickCandidate(PolicyKind::RoundRobin, w, cands, r);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, r % 3);
  }
  cands[1].alive = false;
  const auto pick = pickCandidate(PolicyKind::RoundRobin, w, cands, 1);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);  // rotation lands on dead s1, slides to s2
  cands[0].alive = false;
  cands[2].alive = false;
  EXPECT_FALSE(pickCandidate(PolicyKind::RoundRobin, w, cands, 0).has_value());
}

// --- router: cache affinity and energy accounting ---

TEST(Router, EnergyAwareAffinityExecutesEachKeyOnce) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 3));
  for (int rep = 0; rep < 3; ++rep) {
    for (int n : {100, 200, 300}) {
      RouteDecision d;
      const auto resp = router.tune(freq(n), &d);
      ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
      EXPECT_FALSE(resp.stale);
      // Energy-aware always lands a healthy key on its ring home.
      EXPECT_EQ(d.shardId, router.homeShard(Device::P100, n));
      EXPECT_TRUE(d.home);
    }
  }
  // 9 requests, 3 distinct keys: exactly 3 cold studies cluster-wide.
  EXPECT_EQ(engine->calls(), 3);
  const auto m = router.metrics();
  EXPECT_EQ(m.requests, 9u);
  std::uint64_t completed = 0;
  std::uint64_t inFlight = 0;
  for (const auto& s : m.shards) {
    completed += s.completed;
    inFlight += s.inFlight;
  }
  EXPECT_EQ(completed, 9u);
  EXPECT_EQ(inFlight, 0u);
  EXPECT_TRUE(router.frontsConsistent());
}

TEST(Router, RoundRobinScattersColdStudies) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetOptions opts;
  opts.policy = PolicyKind::RoundRobin;
  FleetRouter router(shardConfigs(engine, 3), opts);
  for (int i = 0; i < 6; ++i) {
    const auto resp = router.tune(freq(4242));
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
  }
  // One key, but round-robin visits every shard: each pays the study.
  EXPECT_EQ(engine->calls(), 3);
}

TEST(Router, EwmaTracksColdStudyPrice) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  const int n = 1000;
  EXPECT_EQ(router.ewmaColdJoules(Device::P100, n), 0.0);
  ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  // FleetFakeEngine bills 0.01*n + 2 J for the cold study; the executed
  // request owns all of it, so the EWMA adopts it as the first sample.
  EXPECT_NEAR(router.ewmaColdJoules(Device::P100, n), 0.01 * n + 2.0, 1e-6);
  // Same workload class (bit-width bucket), so n=1023 shares the price.
  EXPECT_NEAR(router.ewmaColdJoules(Device::P100, 1023), 0.01 * n + 2.0, 1e-6);
  // Other device still unsampled.
  EXPECT_EQ(router.ewmaColdJoules(Device::K40c, n), 0.0);
}

TEST(Router, AutoDeviceExploresThenPicksCheaper) {
  // K40c is 3x more expensive per study under this engine.
  auto engine = std::make_shared<FleetFakeEngine>(3.0);
  FleetRouter router(shardConfigs(engine, 2));
  // Exploration phase: with no price signal the router alternates, so
  // two distinct fresh keys sample both devices.
  std::set<Device> explored;
  for (int n : {900, 901}) {
    FleetRequest r;
    r.device.reset();  // "auto"
    r.n = n;
    r.maxDegradation = 0.5;
    RouteDecision d;
    ASSERT_EQ(router.tune(r, &d).status, serve::Status::Ok);
    explored.insert(d.device);
  }
  EXPECT_EQ(explored.size(), 2u);
  EXPECT_GT(router.ewmaColdJoules(Device::P100, 900), 0.0);
  EXPECT_GT(router.ewmaColdJoules(Device::K40c, 900), 0.0);
  // Exploitation: both sampled, P100 is cheaper, auto picks it.
  for (int n : {902, 903, 904}) {
    FleetRequest r;
    r.device.reset();
    r.n = n;
    r.maxDegradation = 0.5;
    RouteDecision d;
    ASSERT_EQ(router.tune(r, &d).status, serve::Status::Ok);
    EXPECT_EQ(d.device, Device::P100) << n;
  }
}

TEST(Router, RejectsInvalidRequestsWithoutTouchingShards) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  FleetRequest bad;
  bad.device = Device::P100;
  bad.n = 0;
  EXPECT_EQ(router.tune(bad).status, serve::Status::Error);
  bad.n = 10;
  bad.maxDegradation = -1.0;
  EXPECT_EQ(router.tune(bad).status, serve::Status::Error);
  EXPECT_EQ(engine->calls(), 0);
  for (const auto& s : router.metrics().shards) {
    EXPECT_EQ(s.routed, 0u);
    EXPECT_EQ(s.inFlight, 0u);
  }
}

// --- router: shard kill, stale fallback, ring rebalance ---

// The fleetcheck drill in miniature: kill a warm key's home shard,
// verify the replica answers (flagged stale), then rebalance the ring
// and verify the streaming cluster fronts still match a fresh batch
// recompute bitwise.
TEST(Router, KillHomeServesStaleFromReplicaThenRebalances) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 3));

  // Warm a spread of keys so every shard is home to some of them.
  std::vector<int> keys;
  for (int n = 100; n < 124; ++n) keys.push_back(n);
  for (int n : keys) {
    ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  }
  const int coldStudies = engine->calls();
  EXPECT_EQ(coldStudies, static_cast<int>(keys.size()));

  // Pick a victim key and kill its home shard.
  const int victimKey = keys.front();
  const std::string victim = router.homeShard(Device::P100, victimKey);
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(router.killShard(victim));

  // Keys homed on the dead shard are answered from the successor's
  // replica, marked stale, with no new cold study.
  int staleHits = 0;
  for (int n : keys) {
    if (router.homeShard(Device::P100, n) != victim) continue;
    RouteDecision d;
    const auto resp = router.tune(freq(n), &d);
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
    EXPECT_TRUE(resp.stale);
    EXPECT_TRUE(d.staleFallback);
    EXPECT_NE(d.shardId, victim);
    ++staleHits;
  }
  ASSERT_GT(staleHits, 0);  // 24 keys over 3 shards: some map to victim
  EXPECT_EQ(engine->calls(), coldStudies);
  EXPECT_EQ(router.metrics().staleFallbacks,
            static_cast<std::uint64_t>(staleHits));

  // Keys homed elsewhere are untouched by the kill.
  for (int n : keys) {
    if (router.homeShard(Device::P100, n) == victim) continue;
    const auto resp = router.tune(freq(n));
    ASSERT_EQ(resp.status, serve::Status::Ok);
    EXPECT_FALSE(resp.stale);
  }

  // Rebalance: drop the dead shard's vnodes.  Its keys re-home and pay
  // a fresh cold study on their new owner; the streaming cluster fronts
  // must stay bitwise-identical to a batch recompute throughout.
  ASSERT_TRUE(router.removeShardFromRing(victim));
  for (int n : keys) {
    EXPECT_NE(router.homeShard(Device::P100, n), victim);
    ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  }
  EXPECT_GT(engine->calls(), coldStudies);
  EXPECT_TRUE(router.frontsConsistent());

  // Recovery: revive and re-add; the partition returns to the original
  // layout and the fronts remain consistent.
  ASSERT_TRUE(router.reviveShard(victim));
  ASSERT_TRUE(router.addShardToRing(victim));
  EXPECT_EQ(router.homeShard(Device::P100, victimKey), victim);
  for (int n : keys) {
    ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  }
  EXPECT_TRUE(router.frontsConsistent());
  std::uint64_t inFlight = 0;
  for (const auto& s : router.metrics().shards) inFlight += s.inFlight;
  EXPECT_EQ(inFlight, 0u);
}

TEST(Router, AllShardsDeadIsAnErrorNotACrash) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  ASSERT_TRUE(router.killShard("s0"));
  ASSERT_TRUE(router.killShard("s1"));
  const auto resp = router.tune(freq(77));
  EXPECT_EQ(resp.status, serve::Status::Error);
  EXPECT_NE(resp.error.find("no live shard"), std::string::npos);
  EXPECT_EQ(router.metrics().noCandidate, 1u);
  EXPECT_FALSE(router.killShard("nope"));
  EXPECT_FALSE(router.reviveShard("nope"));
  EXPECT_FALSE(router.removeShardFromRing("nope"));
  EXPECT_FALSE(router.addShardToRing("nope"));
}

TEST(Router, StudySweepRoutesToLeastLoadedAndAccountsEnergy) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  serve::StudyRequest sreq;
  sreq.device = Device::K40c;
  sreq.nBegin = 64;
  sreq.nEnd = 256;
  sreq.nStep = 64;
  std::string shardId;
  const auto resp = router.study(sreq, &shardId);
  ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
  EXPECT_FALSE(shardId.empty());
  EXPECT_EQ(engine->calls(), 4);
  const auto m = router.metrics();
  double joules = 0.0;
  for (const auto& s : m.shards) joules += s.attributedJoules;
  EXPECT_GT(joules, 0.0);
  EXPECT_NEAR(joules, m.clusterJoules, 1e-9);
  EXPECT_GT(m.configFrontSize, 0u);
}

// --- router: wire snapshot ---

TEST(Router, WireSnapshotIsParseableFlatJson) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  ASSERT_EQ(router.tune(freq(321)).status, serve::Status::Ok);
  const std::string line = router.renderWireSnapshot();
  std::string err;
  const auto obj = serve::wire::parseObject(line, &err);
  ASSERT_TRUE(obj.has_value()) << err;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("policy").string, policyName(PolicyKind::EnergyAware));
  EXPECT_EQ(obj->at("shards").number, 2.0);
  EXPECT_EQ(obj->at("aliveShards").number, 2.0);
  EXPECT_TRUE(obj->at("frontsConsistent").boolean);
  EXPECT_EQ(obj->at("requests").number, 1.0);
  ASSERT_TRUE(obj->count("shard.s0.completed"));
  ASSERT_TRUE(obj->count("shard.s1.completed"));
  EXPECT_EQ(obj->at("shard.s0.completed").number +
                obj->at("shard.s1.completed").number,
            1.0);
}

TEST(Wire, FleetOpDecodes) {
  std::string err;
  auto snap = serve::wire::decodeRequest(R"({"op":"fleet"})", &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->op, serve::wire::WireRequest::Op::Fleet);
  EXPECT_EQ(snap->fleetAction, "snapshot");

  auto kill = serve::wire::decodeRequest(
      R"({"op":"fleet","action":"kill","shard":"s1"})", &err);
  ASSERT_TRUE(kill.has_value()) << err;
  EXPECT_EQ(kill->fleetAction, "kill");
  EXPECT_EQ(kill->fleetShard, "s1");

  EXPECT_FALSE(serve::wire::decodeRequest(
      R"({"op":"fleet","action":"explode","shard":"s1"})", &err));
  EXPECT_FALSE(serve::wire::decodeRequest(
      R"({"op":"fleet","action":"kill"})", &err));
}

TEST(Wire, AutoDeviceIsTuneOnly) {
  std::string err;
  auto tune = serve::wire::decodeRequest(
      R"({"op":"tune","device":"auto","n":512,"maxDegradation":0.1})", &err);
  ASSERT_TRUE(tune.has_value()) << err;
  EXPECT_TRUE(tune->deviceAuto);

  auto named = serve::wire::decodeRequest(
      R"({"op":"tune","device":"p100","n":512,"maxDegradation":0.1})", &err);
  ASSERT_TRUE(named.has_value()) << err;
  EXPECT_FALSE(named->deviceAuto);

  EXPECT_FALSE(serve::wire::decodeRequest(
      R"({"op":"study","device":"auto","nBegin":64,"nEnd":128,"nStep":64})",
      &err));
  EXPECT_NE(err.find("tune-only"), std::string::npos);
}

// --- broker stale-replication primitives ---

TEST(Broker, InstallStaleResultEnablesTuneFromStale) {
  auto engine = std::make_shared<FleetFakeEngine>();
  serve::BrokerOptions opts;
  opts.threads = 1;
  serve::Broker b(engine, opts);

  serve::TuneRequest req;
  req.device = Device::P100;
  req.n = 640;
  req.maxDegradation = 0.5;

  // Nothing replicated yet: b has no stale answer.
  EXPECT_FALSE(b.tuneFromStale(req).has_value());

  // Replicate a finished study's result into b by hand (the router's
  // onStudyExecuted hook does exactly this with the executor's result).
  auto replica = std::make_shared<const core::WorkloadResult>(
      engine->evaluate(req.device, req.n, nullptr));
  b.installStaleResult(req.device, req.n, replica);

  const auto stale = b.tuneFromStale(req);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->status, serve::Status::Ok);
  EXPECT_TRUE(stale->stale);
  EXPECT_EQ(stale->report.staleServed, 1u);
  // Served from the replica without executing anything on b.
  EXPECT_EQ(engine->calls(), 1);  // only the evaluate() above

  // Invalid inputs are refused, not asserted on.
  serve::TuneRequest bad = req;
  bad.n = -1;
  EXPECT_FALSE(b.tuneFromStale(bad).has_value());
}

// --- concurrency storm (the TSan acceptance target) ---

TEST(Router, ConcurrentMixedTrafficWithKillAndRebalance) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 3));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> okCount{0};
  std::atomic<int> errCount{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Skewed key mix over both devices; some requests run "auto".
        FleetRequest r;
        const int pick = (t * kPerThread + i) % 10;
        r.n = 50 + (pick < 8 ? pick % 3 : pick) * 37;
        r.maxDegradation = 0.5;
        if (pick == 9) {
          r.device.reset();
        } else {
          r.device = pick % 2 == 0 ? Device::P100 : Device::K40c;
        }
        const auto resp = router.tune(r);
        (resp.status == serve::Status::Ok ? okCount : errCount)
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Admin churn concurrent with traffic: kill/rebalance/revive one
  // shard while the clients hammer the other two.
  std::thread admin([&] {
    router.killShard("s2");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    router.removeShardFromRing("s2");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    router.addShardToRing("s2");
    router.reviveShard("s2");
  });
  for (auto& c : clients) c.join();
  admin.join();

  // Every request resolved: stale answers and re-executions both count
  // as Ok; nothing may error (two shards always stayed alive).
  EXPECT_EQ(okCount.load(), kThreads * kPerThread);
  EXPECT_EQ(errCount.load(), 0);
  const auto m = router.metrics();
  std::uint64_t inFlight = 0;
  std::uint64_t completed = 0;
  for (const auto& s : m.shards) {
    inFlight += s.inFlight;
    completed += s.completed;
  }
  EXPECT_EQ(inFlight, 0u);
  EXPECT_EQ(completed, static_cast<std::uint64_t>(okCount.load()));
  EXPECT_TRUE(router.frontsConsistent());
  router.shutdown();  // idempotent; the destructor calls it again
}

// Construction-time validation.
TEST(Router, ConstructorValidatesConfiguration) {
  auto engine = std::make_shared<FleetFakeEngine>();
  EXPECT_THROW(FleetRouter({}, {}), PreconditionError);
  {
    auto cfgs = shardConfigs(engine, 2);
    cfgs[1].id = cfgs[0].id;
    EXPECT_THROW(FleetRouter(std::move(cfgs), {}), PreconditionError);
  }
  {
    auto cfgs = shardConfigs(engine, 1);
    cfgs[0].engine = nullptr;
    EXPECT_THROW(FleetRouter(std::move(cfgs), {}), PreconditionError);
  }
  {
    auto cfgs = shardConfigs(engine, 1);
    cfgs[0].devices.clear();
    EXPECT_THROW(FleetRouter(std::move(cfgs), {}), PreconditionError);
  }
  {
    FleetOptions opts;
    opts.ewmaAlpha = 0.0;
    EXPECT_THROW(FleetRouter(shardConfigs(engine, 1), opts),
                 PreconditionError);
  }
}

// ---------------------------------------------------------------------------
// Cluster metric federation

const obs::FamilySnapshot* familyNamed(const obs::RegistrySnapshot& snap,
                                       const std::string& name) {
  for (const auto& f : snap.families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

// The acceptance pin: the cluster-scope snapshot must be the exact
// bucket/count merge of the per-shard snapshots — not an approximation,
// not a re-scrape.
TEST(Federation, ClusterSnapshotIsExactMergeOfShardSnapshots) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 3));
  for (int n : {100, 200, 300, 400, 500, 600, 700}) {
    ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  }

  const auto shardSnaps = router.shardSnapshots();
  ASSERT_EQ(shardSnaps.size(), 3u);
  EXPECT_EQ(shardSnaps[0].first, "s0");

  const obs::RegistrySnapshot cluster = router.clusterSnapshot();
  // Identical render (the strongest equality the snapshot offers).
  EXPECT_EQ(
      obs::renderExposition(cluster, obs::ExpositionFormat::Prometheus004),
      obs::renderExposition(obs::mergeShardSnapshots(shardSnaps),
                            obs::ExpositionFormat::Prometheus004));

  // Counters: cluster value is the exact per-shard sum.
  std::uint64_t completedAcrossShards = 0;
  for (const auto& [id, snap] : shardSnaps) {
    (void)id;
    const auto* f = familyNamed(snap, "ep_serve_completed_total");
    ASSERT_NE(f, nullptr);
    for (const auto& s : f->series) completedAcrossShards += s.counterValue;
  }
  const auto* completed = familyNamed(cluster, "ep_serve_completed_total");
  ASSERT_NE(completed, nullptr);
  ASSERT_EQ(completed->series.size(), 1u);
  EXPECT_EQ(completed->series[0].counterValue, completedAcrossShards);
  EXPECT_EQ(completedAcrossShards, 7u);

  // Histograms: per-bucket counts and the observation count are the
  // exact sums too.
  const auto* latency = familyNamed(cluster, "ep_serve_request_latency_ms");
  ASSERT_NE(latency, nullptr);
  ASSERT_EQ(latency->series.size(), 1u);
  std::uint64_t clusterObs = 0;
  for (const std::uint64_t b : latency->series[0].buckets) clusterObs += b;
  std::vector<std::uint64_t> bucketSums(latency->series[0].buckets.size(), 0);
  std::uint64_t shardObs = 0;
  for (const auto& [id, snap] : shardSnaps) {
    (void)id;
    const auto* f = familyNamed(snap, "ep_serve_request_latency_ms");
    ASSERT_NE(f, nullptr);
    for (const auto& s : f->series) {
      ASSERT_EQ(s.buckets.size(), bucketSums.size());
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        bucketSums[i] += s.buckets[i];
        shardObs += s.buckets[i];
      }
    }
  }
  EXPECT_EQ(latency->series[0].buckets, bucketSums);
  EXPECT_EQ(clusterObs, shardObs);
  EXPECT_EQ(clusterObs, 7u);

  // Gauges survive per shard, tagged with the shard id.
  const auto* depth = familyNamed(cluster, "ep_serve_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->series.size(), 3u);
  std::set<std::string> shardLabels;
  for (const auto& s : depth->series) {
    ASSERT_FALSE(s.labels.empty());
    EXPECT_EQ(s.labels.back().first, "shard");
    shardLabels.insert(s.labels.back().second);
  }
  EXPECT_EQ(shardLabels, (std::set<std::string>{"s0", "s1", "s2"}));
}

TEST(Federation, RenderClusterMetricsSpeaksBothFormats) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  ASSERT_EQ(router.tune(freq(11)).status, serve::Status::Ok);

  const std::string prom =
      router.renderClusterMetrics(obs::ExpositionFormat::Prometheus004);
  EXPECT_NE(prom.find("ep_serve_queue_depth{shard=\"s0\"} "),
            std::string::npos);
  EXPECT_EQ(prom.find("# EOF"), std::string::npos);

  const std::string om =
      router.renderClusterMetrics(obs::ExpositionFormat::OpenMetrics100);
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  EXPECT_NE(om.find("ep_serve_completed_total 1"), std::string::npos);
}

TEST(Federation, BuildInfoGaugeSurvivesClusterShardLabeling) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  // Every shard broker stamps ep_build_info into its private registry;
  // the cluster merge must keep the build labels and add the shard tag.
  const std::string prom =
      router.renderClusterMetrics(obs::ExpositionFormat::Prometheus004);
  for (const char* shard : {"s0", "s1"}) {
    const std::string needle = std::string("shard=\"") + shard + "\"";
    bool found = false;
    std::size_t pos = prom.find("ep_build_info{");
    while (pos != std::string::npos) {
      const std::size_t eol = prom.find('\n', pos);
      const std::string line = prom.substr(pos, eol - pos);
      if (line.find(needle) != std::string::npos) {
        found = true;
        EXPECT_NE(line.find("git_hash=\""), std::string::npos) << line;
        EXPECT_NE(line.find("build_type=\""), std::string::npos) << line;
        EXPECT_EQ(line.substr(line.size() - 2), " 1") << line;
      }
      pos = prom.find("ep_build_info{", eol);
    }
    EXPECT_TRUE(found) << "no ep_build_info for shard " << shard;
  }
}

TEST(Federation, ClusterProfileFederatesShardStacksAndKeepsRouterFrames) {
  obs::Profiler& prof = obs::Profiler::global();
  obs::ProfilerOptions popts;
  popts.cpuSampling = false;  // deterministic energy-only window
  ASSERT_TRUE(prof.start(popts));
  prof.clear();
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));

  // Deterministic energy records standing in for shard pool work: the
  // root frames are exactly what the shard worker pools push.
  {
    obs::ProfileThreadLabel root("shard/s0");
    obs::ProfileFrame kernel("kernel/dgemm");
    prof.recordEnergySample(2.0, 0x42u);
  }
  {
    obs::ProfileThreadLabel root("shard/s1");
    obs::ProfileFrame kernel("kernel/fft2d");
    prof.recordEnergySample(3.0, 0x42u);
  }
  {
    obs::ProfileThreadLabel root("fleet/main");  // router-side stack
    prof.recordEnergySample(1.0, 0u);
  }
  {
    obs::ProfileThreadLabel root("shard/ghost");  // not a configured shard
    prof.recordEnergySample(0.25, 0u);
  }
  prof.stop();

  const auto shards = router.shardProfiles(obs::ProfileKind::Energy);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].first, "s0");
  ASSERT_EQ(shards[0].second.entries.size(), 1u);
  // Per-shard partitions strip their own root frame.
  EXPECT_EQ(shards[0].second.entries[0].stack,
            (std::vector<std::string>{"kernel/dgemm"}));
  EXPECT_DOUBLE_EQ(shards[0].second.totalWeight, 2.0);
  EXPECT_EQ(shards[1].first, "s1");
  EXPECT_DOUBLE_EQ(shards[1].second.totalWeight, 3.0);

  // The cluster view re-merges the shard partitions (roots restored)
  // and carries router-side frames plus unconfigured shard/* stacks.
  const obs::ProfileSnapshot cluster =
      router.clusterProfile(obs::ProfileKind::Energy);
  EXPECT_EQ(cluster.samples, 4u);
  EXPECT_DOUBLE_EQ(cluster.totalWeight, 6.25);
  ASSERT_EQ(cluster.entries.size(), 4u);
  EXPECT_EQ(cluster.entries[0].stack,
            (std::vector<std::string>{"shard/s1", "kernel/fft2d"}));
  EXPECT_EQ(cluster.entries[1].stack,
            (std::vector<std::string>{"shard/s0", "kernel/dgemm"}));
  EXPECT_EQ(cluster.entries[2].stack,
            (std::vector<std::string>{"fleet/main"}));
  EXPECT_EQ(cluster.entries[3].stack,
            (std::vector<std::string>{"shard/ghost"}));

  // Trace slices stay global: the fanned-out request sums both shards.
  ASSERT_EQ(cluster.traces.size(), 2u);
  EXPECT_EQ(cluster.traces[0].traceId, 0x42u);
  EXPECT_DOUBLE_EQ(cluster.traces[0].weight, 5.0);
  EXPECT_EQ(cluster.traces[0].samples, 2u);
  prof.clear();
}

TEST(Federation, WireSnapshotCarriesPerShardLatencyAndQueueKeys) {
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 2));
  ASSERT_EQ(router.tune(freq(55)).status, serve::Status::Ok);
  std::string err;
  const auto obj = serve::wire::parseObject(router.renderWireSnapshot(), &err);
  ASSERT_TRUE(obj.has_value()) << err;
  for (const char* id : {"s0", "s1"}) {
    const std::string p = std::string("shard.") + id + ".";
    ASSERT_TRUE(obj->count(p + "q50Ms")) << p;
    ASSERT_TRUE(obj->count(p + "q99Ms")) << p;
    ASSERT_TRUE(obj->count(p + "queueDepth")) << p;
    EXPECT_GE(obj->at(p + "q50Ms").number, 0.0);
    EXPECT_EQ(obj->at(p + "queueDepth").number, 0.0);
  }
  // shardBroker resolves configured shards and rejects strangers.
  EXPECT_NE(router.shardBroker("s0"), nullptr);
  EXPECT_EQ(router.shardBroker("nope"), nullptr);
}

// --- self-healing shard health (epchaos) ---

// Builds a 3-shard fleet where `victimIndex` runs behind a ChaosEngine
// (crashable); the other shards use the shared inner engine directly.
struct ChaosFleet {
  std::shared_ptr<FleetFakeEngine> inner;
  std::shared_ptr<chaos::ChaosEngine> chaos;
  std::vector<FleetShardConfig> configs;
};

ChaosFleet chaosFleet(int victimIndex) {
  ChaosFleet f;
  f.inner = std::make_shared<FleetFakeEngine>();
  f.chaos = std::make_shared<chaos::ChaosEngine>(f.inner);
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "s" + std::to_string(i);
    c.engine = i == victimIndex
                   ? std::static_pointer_cast<const serve::TuningEngine>(
                         f.chaos)
                   : std::static_pointer_cast<const serve::TuningEngine>(
                         f.inner);
    c.broker.threads = 2;
    c.broker.queueCapacity = 256;
    f.configs.push_back(std::move(c));
  }
  return f;
}

FleetOptions healthOpts(int ejectAfter = 2, int reinstateAfter = 2) {
  FleetOptions o;
  o.health.enabled = true;
  o.health.ejectAfterFailures = ejectAfter;
  o.health.reinstateAfterSuccesses = reinstateAfter;
  return o;
}

TEST(Health, AutoEjectRoutesBitwiseLikeAManualKill) {
  // The ring is deterministic across instances, so the victim of key
  // 300 can be located on a throwaway router first.
  std::string victim;
  int victimIndex = 0;
  {
    auto engine = std::make_shared<FleetFakeEngine>();
    FleetRouter probe(shardConfigs(engine, 3));
    victim = probe.homeShard(Device::P100, 300);
    victimIndex = victim.back() - '0';
  }

  ChaosFleet f = chaosFleet(victimIndex);
  FleetRouter router(f.configs, healthOpts());
  std::vector<int> keys;
  for (int n = 300; n < 324; ++n) keys.push_back(n);
  for (int n : keys) ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);

  // Crash the victim's engine; two failed probes auto-eject it.
  f.chaos->crash();
  router.healthTick();
  EXPECT_FALSE(router.shardEjected(victim));  // 1 failure < ejectAfter
  router.healthTick();
  ASSERT_TRUE(router.shardEjected(victim));

  // Record the full decision stream against the auto-ejected shard...
  auto drive = [&] {
    std::vector<std::string> journal;
    for (int n : keys) {
      RouteDecision d;
      const auto resp = router.tune(freq(n), &d);
      EXPECT_EQ(resp.status, serve::Status::Ok) << resp.error;
      journal.push_back(d.shardId + (d.staleFallback ? "*" : "") +
                        (resp.stale ? "~" : ""));
    }
    return journal;
  };
  const std::vector<std::string> ejectedJournal = drive();

  // ...then replay the identical traffic against a *manual* kill of the
  // same shard.  Auto-eject flips the same alive flag killShard() does,
  // so the decisions must match entry for entry.
  ASSERT_TRUE(router.reviveShard(victim));
  ASSERT_TRUE(router.killShard(victim));
  EXPECT_FALSE(router.shardEjected(victim));  // manual kill, not ejected
  EXPECT_EQ(drive(), ejectedJournal);

  bool sawStale = false;
  for (const std::string& entry : ejectedJournal) {
    EXPECT_TRUE(entry.find(victim) == std::string::npos) << entry;
    if (entry.find('*') != std::string::npos) sawStale = true;
  }
  EXPECT_TRUE(sawStale);  // 24 keys over 3 shards: some homed on victim
  router.shutdown();
}

TEST(Health, AutoReinstateRestoresHomeRoutingAndRecordsEvents) {
  ChaosFleet f = chaosFleet(1);
  FleetRouter router(f.configs, healthOpts(/*ejectAfter=*/2,
                                           /*reinstateAfter=*/2));
  std::vector<int> keys;
  for (int n = 400; n < 424; ++n) keys.push_back(n);
  for (int n : keys) ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  int victimKey = -1;
  for (int n : keys) {
    if (router.homeShard(Device::P100, n) == "s1") { victimKey = n; break; }
  }
  ASSERT_NE(victimKey, -1);

  f.chaos->crash();
  router.healthTick();
  router.healthTick();
  ASSERT_TRUE(router.shardEjected("s1"));
  EXPECT_EQ(router.metrics().shardsEjected, 1u);

  // Ejected shards keep being probed; recovery reinstates after exactly
  // reinstateAfterSuccesses clean probes.
  f.chaos->recover();
  router.healthTick();
  EXPECT_TRUE(router.shardEjected("s1"));  // 1 success < reinstateAfter
  router.healthTick();
  ASSERT_FALSE(router.shardEjected("s1"));
  const FleetMetrics m = router.metrics();
  EXPECT_EQ(m.shardsReinstated, 1u);
  EXPECT_GT(m.healthProbes, 0u);
  EXPECT_GT(m.healthProbeFailures, 0u);

  // Both transitions land in the flight recorder, scoped to the shard.
  const auto events = router.healthEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(std::string_view(events[0].kind), "shard_ejected");
  EXPECT_EQ(std::string_view(events[1].kind), "shard_reinstated");
  for (const auto& e : events) {
    EXPECT_EQ(std::string_view(e.scope), "s1");
  }

  // The reinstated shard serves its warm home keys fresh again.
  RouteDecision d;
  const auto resp = router.tune(freq(victimKey), &d);
  ASSERT_EQ(resp.status, serve::Status::Ok);
  EXPECT_FALSE(resp.stale);
  EXPECT_EQ(d.shardId, "s1");
  EXPECT_TRUE(d.home);
  router.shutdown();
}

TEST(Health, ManualKillIsNeverProbedOrResurrected) {
  ChaosFleet f = chaosFleet(0);
  FleetRouter router(f.configs, healthOpts(/*ejectAfter=*/1));
  std::vector<int> keys;
  for (int n = 500; n < 524; ++n) keys.push_back(n);
  for (int n : keys) ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  const std::string victim = router.homeShard(Device::P100, keys.front());

  ASSERT_TRUE(router.killShard(victim));
  const std::uint64_t probesBefore = router.metrics().healthProbes;
  for (int i = 0; i < 5; ++i) router.healthTick();
  const FleetMetrics m = router.metrics();
  // Exactly the two live shards are probed per tick: the monitor never
  // touches an operator-killed shard, and never resurrects it.
  EXPECT_EQ(m.healthProbes - probesBefore, 10u);
  EXPECT_EQ(m.shardsEjected, 0u);
  EXPECT_EQ(m.shardsReinstated, 0u);
  EXPECT_FALSE(router.shardEjected(victim));
  for (const auto& s : m.shards) {
    if (s.id == victim) {
      EXPECT_FALSE(s.alive);
      EXPECT_FALSE(s.ejected);
    }
  }
  RouteDecision d;
  const auto resp = router.tune(freq(keys.front()), &d);
  ASSERT_EQ(resp.status, serve::Status::Ok);
  EXPECT_TRUE(d.staleFallback);
  EXPECT_NE(d.shardId, victim);
  router.shutdown();
}

TEST(Health, DisabledHealthIsInvisibleInEverySurface) {
  // Chaos off: a health-disabled fleet must expose byte-identical
  // snapshots to a pre-epchaos build — no health keys, no health
  // metric families, no events, and healthTick() is a no-op.
  auto engine = std::make_shared<FleetFakeEngine>();
  FleetRouter router(shardConfigs(engine, 3));
  for (int n : {700, 701, 702}) {
    ASSERT_EQ(router.tune(freq(n)).status, serve::Status::Ok);
  }
  router.healthTick();  // no-op: must not probe or study anything
  EXPECT_EQ(engine->calls(), 3);

  const std::string wire = router.renderWireSnapshot();
  EXPECT_EQ(wire.find("health"), std::string::npos);
  EXPECT_EQ(wire.find("shardsEjected"), std::string::npos);
  EXPECT_EQ(wire.find(".ejected"), std::string::npos);
  const std::string prom =
      router.renderClusterMetrics(obs::ExpositionFormat::Prometheus004);
  EXPECT_EQ(prom.find("fleet_health"), std::string::npos);
  EXPECT_EQ(prom.find("fleet_shard_ejected_total"), std::string::npos);

  EXPECT_TRUE(router.healthEvents().empty());
  EXPECT_FALSE(router.shardEjected("s0"));
  const FleetMetrics m = router.metrics();
  EXPECT_EQ(m.healthProbes, 0u);
  EXPECT_EQ(m.shardsEjected, 0u);

  // The enabled counterpart *does* carry the extra surfaces, proving
  // the assertions above test absence rather than misspelled keys.
  ChaosFleet f = chaosFleet(0);
  FleetRouter healthy(f.configs, healthOpts());
  healthy.healthTick();
  EXPECT_NE(healthy.renderWireSnapshot().find("healthProbes"),
            std::string::npos);
  EXPECT_NE(healthy.renderClusterMetrics(obs::ExpositionFormat::Prometheus004)
                .find("fleet_health_probes_total"),
            std::string::npos);
  healthy.shutdown();
  router.shutdown();
}

// --- heterogeneous fleets (GPU-only and mixed shards) ---

TEST(Hetero, AutoDeviceRespectsShardCapabilities) {
  auto engine = std::make_shared<FleetFakeEngine>();
  std::vector<FleetShardConfig> cfgs;
  const std::vector<std::vector<Device>> caps = {
      {Device::K40c},                 // g0: CPU-only shard
      {Device::P100, Device::K40c},   // g1: mixed
      {Device::P100},                 // g2: GPU-only shard
  };
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "g" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = 2;
    c.devices = caps[static_cast<std::size_t>(i)];
    cfgs.push_back(std::move(c));
  }
  FleetRouter router(cfgs);

  // "device":"auto" requests must only ever land where the chosen
  // device is actually served.
  for (int i = 0; i < 16; ++i) {
    FleetRequest r;
    r.n = 900 + i * 7;
    r.maxDegradation = 0.5;
    RouteDecision d;
    const auto resp = router.tune(r, &d);
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
    if (d.shardId == "g0") {
      EXPECT_EQ(d.device, Device::K40c);
    }
    if (d.shardId == "g2") {
      EXPECT_EQ(d.device, Device::P100);
    }
  }

  // Pinned-device requests never touch a shard that lacks the device.
  for (int i = 0; i < 12; ++i) {
    RouteDecision d;
    ASSERT_EQ(router.tune(freq(1200 + i * 13, Device::K40c), &d).status,
              serve::Status::Ok);
    EXPECT_NE(d.shardId, "g2");
    ASSERT_EQ(router.tune(freq(1600 + i * 13, Device::P100), &d).status,
              serve::Status::Ok);
    EXPECT_NE(d.shardId, "g0");
  }
  EXPECT_EQ(router.metrics().noCandidate, 0u);
  EXPECT_TRUE(router.frontsConsistent());
  router.shutdown();
}

TEST(Hetero, StaleServingCrossesOnlyCapableShards) {
  auto engine = std::make_shared<FleetFakeEngine>();
  std::vector<FleetShardConfig> cfgs;
  const std::vector<std::vector<Device>> caps = {
      {Device::K40c}, {Device::P100, Device::K40c}, {Device::P100}};
  for (int i = 0; i < 3; ++i) {
    FleetShardConfig c;
    c.id = "g" + std::to_string(i);
    c.engine = engine;
    c.broker.threads = 2;
    c.devices = caps[static_cast<std::size_t>(i)];
    cfgs.push_back(std::move(c));
  }
  FleetRouter router(cfgs);

  // Warm K40c keys, remembering who actually executed each one (the
  // ring home of a K40c key may be the GPU-only shard, in which case
  // the router already diverted it).
  std::vector<int> keys;
  std::vector<std::string> servedBy;
  for (int n = 2000; n < 2024; ++n) {
    keys.push_back(n);
    RouteDecision d;
    ASSERT_EQ(router.tune(freq(n, Device::K40c), &d).status,
              serve::Status::Ok);
    servedBy.push_back(d.shardId);
  }
  const std::string victim = servedBy.front();
  const std::string survivor = victim == "g0" ? "g1" : "g0";

  // Replicas of an executed K40c study can only live on the *other*
  // K40c-capable shard, so after the executor dies every one of its
  // keys stale-serves from that survivor — never from the GPU-only g2.
  ASSERT_TRUE(router.killShard(victim));
  const int callsBefore = engine->calls();
  int staleHits = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (servedBy[i] != victim) continue;
    RouteDecision d;
    const auto resp = router.tune(freq(keys[i], Device::K40c), &d);
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
    EXPECT_TRUE(resp.stale);
    EXPECT_TRUE(d.staleFallback);
    EXPECT_EQ(d.shardId, survivor);
    ++staleHits;
  }
  ASSERT_GT(staleHits, 0);
  EXPECT_EQ(engine->calls(), callsBefore);  // stale serving, no re-study
  EXPECT_TRUE(router.frontsConsistent());
  router.shutdown();
}

}  // namespace
}  // namespace ep::fleet
