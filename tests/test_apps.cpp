// Tests for epapps: the functional Fig 5 kernel, the GPU matrix-
// multiplication application, the CPU DGEMM application and the 2D-FFT
// application, including the full measurement pipeline.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/cpu_dgemm_app.hpp"
#include "apps/fft2d_app.hpp"
#include "apps/gpu_matmul_app.hpp"
#include "apps/matmul_kernel.hpp"
#include "blas/dgemm.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"
#include "cudasim/executor.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::apps {
namespace {

std::vector<double> randomMatrix(std::size_t n, Rng& rng) {
  std::vector<double> m(n * n);
  for (auto& x : m) x = rng.uniform(-1.0, 1.0);
  return m;
}

// --- functional Fig 5 kernel ---

TEST(MatMulKernel, SingleProductMatchesNaive) {
  const std::size_t n = 16;
  Rng rng(1);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  std::vector<double> expected(n * n, 0.0);
  blas::dgemmNaive(n, 1.0, a, b, 0.0, expected);

  cusim::Device device(hw::nvidiaP100Pcie());
  cusim::Executor exec;
  std::vector<double> c(n * n, 0.0);
  runMatMulKernel(device, exec, {n, 4, 1, 1}, a, b, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-9);
  }
}

TEST(MatMulKernel, BsNotDividingNHandledByPadding) {
  const std::size_t n = 13;  // prime
  Rng rng(2);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  std::vector<double> expected(n * n, 0.0);
  blas::dgemmNaive(n, 1.0, a, b, 0.0, expected);

  cusim::Device device(hw::nvidiaP100Pcie());
  cusim::Executor exec;
  for (std::size_t bs : {2u, 3u, 5u, 8u, 16u}) {
    std::vector<double> c(n * n, 0.0);
    runMatMulKernel(device, exec, {n, bs, 1, 1}, a, b, c);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expected[i], 1e-9) << "bs=" << bs;
    }
  }
}

TEST(MatMulKernel, GandRAccumulateProducts) {
  // G x R products accumulate: C = C0 + G*R * A*B.
  const std::size_t n = 8;
  Rng rng(3);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  std::vector<double> ab(n * n, 0.0);
  blas::dgemmNaive(n, 1.0, a, b, 0.0, ab);

  cusim::Device device(hw::nvidiaK40c());
  cusim::Executor exec;
  std::vector<double> c(n * n, 1.0);  // non-zero C0
  runMatMulKernel(device, exec, {n, 4, 3, 2}, a, b, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], 1.0 + 6.0 * ab[i], 1e-9);
  }
}

TEST(MatMulKernel, CountersMatchModelGroundTruth) {
  const std::size_t n = 32;
  Rng rng(4);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  cusim::Device device(hw::nvidiaP100Pcie());
  cusim::Executor exec;
  cusim::CuptiCounters counters;
  std::vector<double> c(n * n, 0.0);
  runMatMulKernel(device, exec, {n, 8, 2, 1}, a, b, c, &counters);
  // flops = products * 2 * n^3 (exact tiles here).
  EXPECT_EQ(counters.trueValue(cusim::CuptiEvent::kFlopCountDp),
            2ULL * 2 * 32 * 32 * 32);
  EXPECT_GT(counters.trueValue(cusim::CuptiEvent::kSharedLoadStore), 0u);
  EXPECT_GT(counters.trueValue(cusim::CuptiEvent::kDramBytes), 0u);
}

TEST(MatMulKernel, ParallelExecutorMatchesSequential) {
  const std::size_t n = 24;
  Rng rng(5);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  cusim::Device device(hw::nvidiaP100Pcie());
  std::vector<double> cSeq(n * n, 0.0), cPar(n * n, 0.0);
  cusim::Executor seq;
  runMatMulKernel(device, seq, {n, 5, 2, 2}, a, b, cSeq);
  ThreadPool pool(4);
  cusim::Executor par(&pool);
  runMatMulKernel(device, par, {n, 5, 2, 2}, a, b, cPar);
  EXPECT_EQ(cSeq, cPar);
}

// --- GPU application ---

GpuMatMulApp makeApp(bool meter = false) {
  GpuMatMulOptions opts;
  opts.useMeter = meter;
  return GpuMatMulApp(hw::GpuModel(hw::nvidiaP100Pcie()), opts);
}

TEST(GpuApp, EnumerationHoldsWorkloadInvariant) {
  const GpuMatMulApp app = makeApp();
  const auto configs = app.enumerateConfigs(4096);
  EXPECT_FALSE(configs.empty());
  for (const auto& c : configs) {
    EXPECT_EQ(c.g * c.r, app.options().totalProducts);
    EXPECT_GE(c.bs, 1);
    EXPECT_LE(c.bs, 32);
    EXPECT_TRUE(app.model().isLaunchable(c));
  }
}

TEST(GpuApp, EnumerationCoversAllBsAndGroupSplits) {
  const GpuMatMulApp app = makeApp();
  const auto configs = app.enumerateConfigs(4096);
  // 32 block sizes x divisors of 8 as G in [1,8]: {1,2,4,8}.
  EXPECT_EQ(configs.size(), 32u * 4u);
}

TEST(GpuApp, OversizedWorkloadHasNoConfigs) {
  const GpuMatMulApp app = makeApp();
  EXPECT_TRUE(app.enumerateConfigs(30000).empty());  // > 12 GB
}

TEST(GpuApp, ModelOnlyRunMatchesKernelModel) {
  const GpuMatMulApp app = makeApp(false);
  Rng rng(6);
  hw::MatMulConfig cfg{8192, 32, 2, 4};
  const auto point = app.runConfig(cfg, rng);
  const auto model = app.model().modelMatMul(cfg);
  EXPECT_DOUBLE_EQ(point.time.value(), model.time.value());
  EXPECT_DOUBLE_EQ(point.dynamicEnergy.value(),
                   model.dynamicEnergy().value());
}

TEST(GpuApp, MeteredRunCloseToGroundTruthAndConverged) {
  const GpuMatMulApp app = makeApp(true);
  Rng rng(7);
  hw::MatMulConfig cfg{10240, 32, 2, 4};
  const auto point = app.runConfig(cfg, rng);
  const auto truth = app.model().modelMatMul(cfg);
  EXPECT_NEAR(point.dynamicEnergy.value() /
                  truth.dynamicEnergy().value(),
              1.0, 0.05);
  EXPECT_NEAR(point.time.value() / truth.time.value(), 1.0, 0.01);
  EXPECT_GE(point.repetitions, 5u);
}

TEST(GpuApp, DeterministicForSameSeed) {
  const GpuMatMulApp app = makeApp(true);
  Rng rngA(8), rngB(8);
  hw::MatMulConfig cfg{8192, 16, 1, 8};
  const auto a = app.runConfig(cfg, rngA);
  const auto b = app.runConfig(cfg, rngB);
  EXPECT_DOUBLE_EQ(a.dynamicEnergy.value(), b.dynamicEnergy.value());
  EXPECT_DOUBLE_EQ(a.time.value(), b.time.value());
}

TEST(GpuApp, LabelsAreHumanReadable) {
  GpuDataPoint p;
  p.config = {1024, 24, 2, 4};
  EXPECT_EQ(p.label(), "BS=24 G=2 R=4");
}

TEST(GpuApp, AdditivityConfigsVaryOnlyG) {
  const GpuMatMulApp app = makeApp();
  const auto configs = app.additivityConfigs(5120, 32, 4);
  ASSERT_EQ(configs.size(), 4u);
  for (int g = 1; g <= 4; ++g) {
    EXPECT_EQ(configs[g - 1].g, g);
    EXPECT_EQ(configs[g - 1].r, 1);
    EXPECT_EQ(configs[g - 1].bs, 32);
  }
}

TEST(GpuApp, NodeIdleIncludesHostAndBoard) {
  const GpuMatMulApp app = makeApp();
  EXPECT_DOUBLE_EQ(app.nodeIdlePower().value(),
                   85.0 + hw::nvidiaP100Pcie().boardIdlePower.value());
}

// --- CPU application ---

TEST(CpuApp, EnumerationRespectsMachineLimits) {
  CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  const auto configs =
      app.enumerateConfigs(8192, hw::BlasVariant::IntelMklLike);
  EXPECT_GT(configs.size(), 50u);
  for (const auto& c : configs) {
    EXPECT_LE(c.threadgroups * c.threadsPerGroup, 48);
    EXPECT_EQ(c.variant, hw::BlasVariant::IntelMklLike);
  }
}

TEST(CpuApp, WorkloadRunProducesBothSchemes) {
  CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  Rng rng(9);
  const auto points =
      app.runWorkload(4096, hw::BlasVariant::OpenBlasLike, rng);
  bool sawHorizontal = false, sawSquare = false;
  for (const auto& p : points) {
    if (p.config.partition == hw::PartitionScheme::Horizontal) {
      sawHorizontal = true;
    } else {
      sawSquare = true;
    }
    EXPECT_GT(p.gflops, 0.0);
    EXPECT_GE(p.avgUtilizationPct, 0.0);
    EXPECT_LE(p.avgUtilizationPct, 100.0);
  }
  EXPECT_TRUE(sawHorizontal);
  EXPECT_TRUE(sawSquare);
}

TEST(CpuApp, MeteredPowerTracksModelPower) {
  CpuDgemmOptions opts;
  opts.useMeter = true;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  Rng rng(10);
  hw::CpuDgemmConfig cfg;
  cfg.n = 17408;
  cfg.threadgroups = 2;
  cfg.threadsPerGroup = 12;
  const auto p = app.runConfig(cfg, rng);
  EXPECT_NEAR(p.dynamicPower.value() / p.model.dynamicPower.value(), 1.0,
              0.05);
}

TEST(CpuApp, UtilizationJitterIsSmall) {
  CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  hw::CpuDgemmConfig cfg;
  cfg.n = 8192;
  cfg.threadgroups = 1;
  cfg.threadsPerGroup = 24;
  Rng rng(11);
  const auto a = app.runConfig(cfg, rng);
  EXPECT_NEAR(a.avgUtilizationPct, 100.0 * a.model.avgUtilization, 1.0);
}

// --- FFT application ---

TEST(FftApp, SweepProducesMonotonicWork) {
  Fft2dOptions opts;
  opts.useMeter = false;
  const Fft2dApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  Rng rng(12);
  const auto points = app.runSweep({256, 512, 1024, 2048}, rng);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].work, points[i - 1].work);
    EXPECT_GT(points[i].dynamicEnergy.value(),
              points[i - 1].dynamicEnergy.value());
  }
}

TEST(FftApp, GpuVariantCarriesProcessorName) {
  const Fft2dApp app(hw::GpuModel(hw::nvidiaK40c()));
  EXPECT_EQ(app.processorName(), "Nvidia K40c");
}

TEST(FftApp, MeteredEnergyCloseToModel) {
  Fft2dOptions metered;
  const Fft2dApp app(hw::GpuModel(hw::nvidiaP100Pcie()), metered);
  Fft2dOptions raw;
  raw.useMeter = false;
  const Fft2dApp truth(hw::GpuModel(hw::nvidiaP100Pcie()), raw);
  Rng rngA(13), rngB(13);
  const auto a = app.runSize(8192, rngA);
  const auto b = truth.runSize(8192, rngB);
  EXPECT_NEAR(a.dynamicEnergy.value() / b.dynamicEnergy.value(), 1.0, 0.08);
}

TEST(FftApp, RejectsTinySizes) {
  const Fft2dApp app(hw::CpuModel(hw::haswellE52670v3()));
  Rng rng(14);
  EXPECT_THROW((void)app.runSize(1, rng), PreconditionError);
}

}  // namespace
}  // namespace ep::apps

// --- functional verification of the CPU app's decomposition (appended) ---

namespace ep::apps {
namespace {

TEST(CpuAppFunctional, EveryConfigurationComputesCorrectly) {
  // Each (p, t) structure really computes a correct DGEMM via epblas.
  CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  Rng rng(21);
  for (const auto& cfg :
       app.enumerateConfigs(64, hw::BlasVariant::IntelMklLike)) {
    if (cfg.partition != hw::PartitionScheme::Horizontal) continue;
    if (cfg.threadsPerGroup % 4 != 0) continue;  // sample the space
    const double err = CpuDgemmApp::functionalCheck(cfg, 48, rng);
    EXPECT_LT(err, 1e-9) << "p=" << cfg.threadgroups
                         << " t=" << cfg.threadsPerGroup;
  }
}

TEST(GpuStudyIntegration, DeterministicAcrossRuns) {
  GpuMatMulOptions opts;
  opts.useMeter = true;
  const GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), opts);
  Rng rngA(7), rngB(7);
  const auto a = app.runWorkload(8192, rngA);
  const auto b = app.runWorkload(8192, rngB);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].dynamicEnergy.value(),
                     b[i].dynamicEnergy.value());
  }
}

// Front stability: the headline P100 trade-off must survive different
// meter-noise seeds, not just the one used in the benches.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, P100HeadlineRobustToMeterNoise) {
  GpuMatMulOptions opts;
  opts.useMeter = true;
  const GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), opts);
  Rng rng(GetParam());
  const auto data = app.runWorkload(10240, rng);
  const auto tr =
      pareto::analyzeTradeoff(GpuMatMulApp::toPoints(data));
  EXPECT_NEAR(tr.maxEnergySavings, 0.50, 0.08) << "seed " << GetParam();
  EXPECT_NEAR(tr.performanceDegradation, 0.11, 0.04)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// --- fork-salt regressions ---

// The old fork key shifted bs/g/r/n into (overlapping) bit ranges and
// XORed them: for totalProducts = 2^19 the configs (G=2, R=2^18) and
// (G=4, R=2^17) produced the SAME key, so two different configurations
// drew identical meter noise.  The mix64 chain must separate them.
TEST(GpuApp, ForkSaltsDistinctWhereOldXorKeyCollided) {
  const auto oldKey = [](const hw::MatMulConfig& cfg) {
    return (static_cast<std::uint64_t>(cfg.bs) << 32) ^
           (static_cast<std::uint64_t>(cfg.g) << 16) ^
           static_cast<std::uint64_t>(cfg.r) ^
           (static_cast<std::uint64_t>(cfg.n) << 40);
  };
  const hw::MatMulConfig a{10240, 32, 2, 1 << 18};
  const hw::MatMulConfig b{10240, 32, 4, 1 << 17};
  ASSERT_EQ(oldKey(a), oldKey(b)) << "collision premise no longer holds";
  EXPECT_NE(GpuMatMulApp::forkSalt(a), GpuMatMulApp::forkSalt(b));
}

TEST(GpuApp, ForkSaltsPairwiseDistinctAcrossConfigSpace) {
  const GpuMatMulApp app = makeApp();
  std::set<std::uint64_t> salts;
  std::size_t configs = 0;
  for (int n : {8192, 10240, 18432}) {
    for (const auto& cfg : app.enumerateConfigs(n)) {
      salts.insert(GpuMatMulApp::forkSalt(cfg));
      ++configs;
    }
  }
  EXPECT_EQ(salts.size(), configs);
}

TEST(CpuApp, ForkSaltsPairwiseDistinctAcrossConfigSpace) {
  CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  std::set<std::uint64_t> salts;
  std::size_t configs = 0;
  for (const auto variant :
       {hw::BlasVariant::IntelMklLike, hw::BlasVariant::OpenBlasLike}) {
    for (const auto& cfg : app.enumerateConfigs(512, variant)) {
      salts.insert(CpuDgemmApp::forkSalt(cfg));
      ++configs;
    }
  }
  EXPECT_EQ(salts.size(), configs);
}

// --- parallel == serial determinism ---

void expectSameGpuData(const std::vector<GpuDataPoint>& a,
                       const std::vector<GpuDataPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time.value(), b[i].time.value()) << "i=" << i;
    EXPECT_DOUBLE_EQ(a[i].dynamicEnergy.value(), b[i].dynamicEnergy.value())
        << "i=" << i;
    EXPECT_EQ(a[i].repetitions, b[i].repetitions) << "i=" << i;
  }
}

TEST(GpuStudyIntegration, ParallelWorkloadBitwiseEqualsSerial) {
  GpuMatMulOptions opts;
  opts.useMeter = true;
  const GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), opts);
  Rng rng(7);
  const auto serial = app.runWorkload(8192, rng);
  for (std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    Rng prng(7);
    const auto parallel = app.runWorkload(8192, prng, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expectSameGpuData(parallel, serial);
  }
}

TEST(GpuStudyIntegration, ParallelSweepBitwiseEqualsSerial) {
  GpuMatMulOptions opts;
  opts.useMeter = true;
  core::GpuEpStudy study(GpuMatMulApp(hw::GpuModel(hw::nvidiaK40c()), opts));
  const std::vector<int> sizes{8704, 10240};
  Rng rng(7);
  const auto serial = study.runSweep(sizes, rng);
  for (std::size_t threads : {1u, 4u, 8u}) {
    // The sweep nests: parallel over sizes AND parallel over configs,
    // all on one pool.
    ThreadPool pool(threads);
    Rng prng(7);
    const auto parallel = study.runSweep(sizes, prng, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel[i].n, serial[i].n);
      expectSameGpuData(parallel[i].data, serial[i].data);
      ASSERT_EQ(parallel[i].globalFront.size(), serial[i].globalFront.size());
      ASSERT_EQ(parallel[i].localFront.size(), serial[i].localFront.size());
    }
  }
}

TEST(CpuApp, ParallelWorkloadBitwiseEqualsSerial) {
  CpuDgemmOptions opts;
  opts.useMeter = true;
  const CpuDgemmApp app(hw::CpuModel(hw::haswellE52670v3()), opts);
  Rng rng(9);
  const auto serial = app.runWorkload(512, hw::BlasVariant::IntelMklLike, rng);
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    Rng prng(9);
    const auto parallel =
        app.runWorkload(512, hw::BlasVariant::IntelMklLike, prng, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel[i].time.value(), serial[i].time.value());
      EXPECT_DOUBLE_EQ(parallel[i].dynamicEnergy.value(),
                       serial[i].dynamicEnergy.value());
      EXPECT_DOUBLE_EQ(parallel[i].avgUtilizationPct,
                       serial[i].avgUtilizationPct);
    }
  }
}

}  // namespace
}  // namespace ep::apps
