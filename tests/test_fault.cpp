// epfault tests: deterministic fault injection (FaultyMeter), the
// robust measurement loop's recovery tiers, skip-and-record studies,
// and crash-safe checkpoint/resume — including the bitwise guarantees
// (serial == parallel, resume == uninterrupted) that make a fault
// campaign reproducible.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/journal.hpp"
#include "core/study.hpp"
#include "fault/fault.hpp"
#include "fault/faulty_meter.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"
#include "power/measurer.hpp"
#include "power/meter.hpp"
#include "power/profile.hpp"

namespace ep::fault {
namespace {

using ep::literals::operator""_s;
using ep::literals::operator""_W;

power::MeterOptions fastMeter() {
  power::MeterOptions m;
  m.sampleInterval = Seconds{0.25};
  m.randomPhase = false;
  return m;
}

power::ProfilePowerSource benchProfile() {
  power::ProfilePowerSource p(90.0_W);
  p.addSegment({0.0_s, 20.0_s, 80.0_W});  // 1600 J dynamic
  return p;
}

bool sameTrace(const power::PowerTrace& a, const power::PowerTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (core::doubleBits(a.samples()[i].time.value()) !=
            core::doubleBits(b.samples()[i].time.value()) ||
        core::doubleBits(a.samples()[i].power.value()) !=
            core::doubleBits(b.samples()[i].power.value())) {
      return false;
    }
  }
  return true;
}

// --- options / plumbing ---

TEST(FaultOptions, CampaignScalesWindowRatesDown) {
  const auto o = FaultInjectionOptions::campaign(0.08);
  EXPECT_TRUE(o.enabled);
  EXPECT_DOUBLE_EQ(o.sampleFaultRate, 0.08);
  EXPECT_DOUBLE_EQ(o.timeoutRate, 0.02);
  EXPECT_DOUBLE_EQ(o.gainDriftRate, 0.04);
  EXPECT_FALSE(FaultInjectionOptions::campaign(0.0).enabled);
  EXPECT_THROW((void)FaultInjectionOptions::campaign(1.5), PreconditionError);
}

TEST(FaultOptions, MeterRejectsInvalidRates) {
  FaultInjectionOptions o;
  o.enabled = true;
  o.sampleFaultRate = 1.5;
  EXPECT_THROW(FaultyMeter(power::WattsUpMeter(fastMeter()), o),
               PreconditionError);
  o.sampleFaultRate = 0.1;
  o.dropWeight = o.stuckWeight = o.spikeWeight = o.nanWeight = o.zeroWeight =
      0.0;
  EXPECT_THROW(FaultyMeter(power::WattsUpMeter(fastMeter()), o),
               PreconditionError);
}

TEST(FaultCounts, AggregateAndSummarize) {
  FaultCounts a;
  a.dropped = 2;
  a.spikes = 1;
  FaultCounts b;
  b.nans = 3;
  b.timeouts = 1;
  a += b;
  EXPECT_EQ(a.total(), 7u);
  EXPECT_NE(a.summary().find("dropped=2"), std::string::npos);
  EXPECT_STREQ(faultKindName(FaultKind::Spike), "spike");
  EXPECT_STREQ(faultKindName(FaultKind::MeterTimeout), "meter_timeout");
}

// --- FaultyMeter ---

TEST(FaultyMeter, DisabledIsBitwiseIdentity) {
  const power::WattsUpMeter clean(fastMeter());
  const FaultyMeter faulty(power::WattsUpMeter(fastMeter()),
                           FaultInjectionOptions{});  // enabled == false
  const auto profile = benchProfile();
  Rng a(42), b(42);
  const power::PowerTrace ta = clean.record(profile, 20.0_s, a);
  const power::PowerTrace tb = faulty.record(profile, 20.0_s, b);
  EXPECT_TRUE(sameTrace(ta, tb));
  EXPECT_EQ(faulty.counts().total(), 0u);
}

TEST(FaultyMeter, InjectionIsDeterministic) {
  const auto opts = FaultInjectionOptions::campaign(0.10);
  const FaultyMeter m1(power::WattsUpMeter(fastMeter()), opts);
  const FaultyMeter m2(power::WattsUpMeter(fastMeter()), opts);
  const auto profile = benchProfile();
  Rng a(7), b(7);
  const power::PowerTrace ta = m1.record(profile, 20.0_s, a);
  const power::PowerTrace tb = m2.record(profile, 20.0_s, b);
  EXPECT_TRUE(sameTrace(ta, tb));
  EXPECT_EQ(m1.counts().total(), m2.counts().total());
  EXPECT_GT(m1.counts().total(), 0u);
}

TEST(FaultyMeter, WindowsGetDistinctFaultStreams) {
  const auto opts = FaultInjectionOptions::campaign(0.15);
  const FaultyMeter m(power::WattsUpMeter(fastMeter()), opts);
  const auto profile = benchProfile();
  Rng rng(7);
  power::PowerTrace t1, t2;
  m.recordInto(profile, 20.0_s, rng, t1);
  Rng replay(7);  // same *measurement* draws as window 1...
  m.recordInto(profile, 20.0_s, replay, t2);
  EXPECT_EQ(m.windows(), 2u);
  // ...but the per-window fault stream differs, so the corruption does.
  EXPECT_FALSE(sameTrace(t1, t2));
}

TEST(FaultyMeter, EndpointsSurviveTotalDropCampaign) {
  FaultInjectionOptions opts;
  opts.enabled = true;
  opts.sampleFaultRate = 1.0;  // every sample faults...
  opts.dropWeight = 1.0;       // ...and every fault is a drop
  opts.stuckWeight = opts.spikeWeight = opts.nanWeight = opts.zeroWeight = 0.0;
  const power::WattsUpMeter clean(fastMeter());
  const FaultyMeter faulty(power::WattsUpMeter(fastMeter()), opts);
  const auto profile = benchProfile();
  Rng a(11), b(11);
  const power::PowerTrace reference = clean.record(profile, 20.0_s, a);
  const power::PowerTrace dropped = faulty.record(profile, 20.0_s, b);
  // Everything interior is gone, but the bracketing samples survive so
  // the energy window stays covered.
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_DOUBLE_EQ(dropped.startTime().value(),
                   reference.startTime().value());
  EXPECT_DOUBLE_EQ(dropped.endTime().value(), reference.endTime().value());
  EXPECT_EQ(faulty.counts().dropped, reference.size() - 2);
}

TEST(FaultyMeter, SpikesMultiplyTheCleanReading) {
  FaultInjectionOptions opts;
  opts.enabled = true;
  opts.sampleFaultRate = 1.0;
  opts.spikeWeight = 1.0;
  opts.dropWeight = opts.stuckWeight = opts.nanWeight = opts.zeroWeight = 0.0;
  opts.spikeFactor = 4.0;
  const power::WattsUpMeter clean(fastMeter());
  const FaultyMeter faulty(power::WattsUpMeter(fastMeter()), opts);
  const auto profile = benchProfile();
  Rng a(13), b(13);
  const power::PowerTrace reference = clean.record(profile, 20.0_s, a);
  const power::PowerTrace spiked = faulty.record(profile, 20.0_s, b);
  ASSERT_EQ(spiked.size(), reference.size());
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    EXPECT_DOUBLE_EQ(spiked.samples()[i].power.value(),
                     4.0 * reference.samples()[i].power.value());
  }
}

TEST(FaultyMeter, TimeoutThrowsBeforeAnyRecording) {
  FaultInjectionOptions opts;
  opts.enabled = true;
  opts.timeoutRate = 1.0;
  const FaultyMeter m(power::WattsUpMeter(fastMeter()), opts);
  const auto profile = benchProfile();
  Rng rng(3);
  power::PowerTrace out;
  EXPECT_THROW(m.recordInto(profile, 20.0_s, rng, out),
               power::MeterTimeoutError);
  EXPECT_EQ(m.counts().timeouts, 1u);
  EXPECT_EQ(m.windows(), 1u);
}

// --- robust measurement loop ---

TEST(RobustMeasure, PersistentTimeoutExhaustsRetriesWithBackoff) {
  FaultInjectionOptions opts;
  opts.enabled = true;
  opts.timeoutRate = 1.0;
  auto meter = std::make_shared<const FaultyMeter>(
      power::WattsUpMeter(fastMeter()), opts);
  const power::EnergyMeasurer measurer(meter, 90.0_W);
  power::RobustnessOptions robustness;
  robustness.timeoutRetries = 3;
  robustness.backoffBaseS = 0.5;
  const auto profile = benchProfile();
  Rng rng(5);
  try {
    (void)measurer.measure(profile, 20.0_s, rng, 0.0_s, {}, robustness);
    FAIL() << "expected MeasurementError";
  } catch (const power::MeasurementError& e) {
    EXPECT_EQ(e.report().timeouts, 4u);  // initial try + 3 retries
    EXPECT_EQ(e.report().retries, 3u);
    // Exponential virtual backoff: 0.5 + 1 + 2 seconds.
    EXPECT_DOUBLE_EQ(e.report().virtualBackoffS, 3.5);
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
  }
}

TEST(RobustMeasure, ValidationRejectionExhaustsTheBudget) {
  // A clean meter, but validation thresholds nothing can satisfy: every
  // trace is rejected and the re-measure budget runs out.
  const power::EnergyMeasurer measurer(power::WattsUpMeter(fastMeter()),
                                       90.0_W);
  power::RobustnessOptions robustness;
  robustness.validation.enabled = true;
  robustness.validation.maxGapFactor = 0.5;  // median gap always exceeds this
  robustness.remeasureBudget = 4;
  const auto profile = benchProfile();
  Rng rng(6);
  try {
    (void)measurer.measure(profile, 20.0_s, rng, 0.0_s, {}, robustness);
    FAIL() << "expected MeasurementError";
  } catch (const power::MeasurementError& e) {
    EXPECT_EQ(e.report().invalidTraces, 5u);  // budget + the final straw
    EXPECT_EQ(e.report().timeouts, 0u);
  }
}

TEST(RobustMeasure, NanObservationsAreScreenedOut) {
  // NaN-only sample faults with no sanitization: the corrupted windows
  // integrate to NaN dynamic energy, and outlier screening must reject
  // exactly those observations while the measurement still converges.
  FaultInjectionOptions opts;
  opts.enabled = true;
  opts.sampleFaultRate = 0.02;
  opts.nanWeight = 1.0;
  opts.dropWeight = opts.stuckWeight = opts.spikeWeight = opts.zeroWeight =
      0.0;
  auto meter = std::make_shared<const FaultyMeter>(
      power::WattsUpMeter(fastMeter()), opts);
  const power::EnergyMeasurer measurer(meter, 90.0_W);
  power::RobustnessOptions robustness;
  robustness.rejectOutliers = true;
  robustness.remeasureBudget = 128;
  const auto profile = benchProfile();
  Rng rng(8);
  const power::MeasuredEnergy m =
      measurer.measure(profile, 20.0_s, rng, 0.0_s, {}, robustness);
  EXPECT_TRUE(std::isfinite(m.mean.dynamicEnergy.value()));
  EXPECT_NEAR(m.mean.dynamicEnergy.value(), 1600.0, 120.0);
  EXPECT_GT(m.faults.outliersRejected, 0u);
}

TEST(RobustMeasure, CleanPathIsBitwiseUnaffectedByRobustness) {
  // All recovery tiers enabled over a fault-free instrument: no knob
  // may perturb a single draw or reading — the hardened pipeline must
  // be a superset, not a variant, of the clean one.
  const auto profile = benchProfile();
  power::RobustnessOptions all;
  all.sanitizeSamples = true;
  all.maxPlausibleWatts = 600.0;
  all.validation.enabled = true;
  all.rejectOutliers = true;
  const power::EnergyMeasurer measurer(power::WattsUpMeter(fastMeter()),
                                       90.0_W);
  Rng a(21), b(21);
  const auto off = measurer.measure(profile, 20.0_s, a);
  const auto on = measurer.measure(profile, 20.0_s, b, 0.0_s, {}, all);
  EXPECT_EQ(core::doubleBits(off.mean.dynamicEnergy.value()),
            core::doubleBits(on.mean.dynamicEnergy.value()));
  EXPECT_EQ(core::doubleBits(off.mean.executionTime.value()),
            core::doubleBits(on.mean.executionTime.value()));
  EXPECT_EQ(on.faults.recoveries(), 0u);
  EXPECT_EQ(on.faults.samplesSanitized, 0u);
}

// --- study-level failure policies ---

apps::GpuMatMulOptions smallStudyOptions() {
  apps::GpuMatMulOptions o;
  o.totalProducts = 4;
  o.bsMax = 8;
  o.useMeter = true;
  o.meter.sampleInterval = Seconds{0.02};
  o.meter.randomPhase = false;
  o.measurement.minRepetitions = 3;
  o.measurement.maxRepetitions = 12;
  return o;
}

TEST(StudyFaults, SkipAndRecordCompactsInEnumerationOrder) {
  apps::GpuMatMulOptions o = smallStudyOptions();
  o.faults.enabled = true;
  o.faults.timeoutRate = 0.25;  // some configs die, some survive
  o.robustness.timeoutRetries = 0;
  o.failPolicy = FailPolicy::SkipAndRecord;
  const apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaK40c()), o);
  const int n = 2048;
  Rng rng(99);
  std::vector<apps::GpuConfigFailure> failures;
  const auto data = app.runWorkload(n, rng, nullptr, &failures);
  EXPECT_EQ(data.size() + failures.size(), app.enumerateConfigs(n).size());
  EXPECT_FALSE(data.empty());
  EXPECT_FALSE(failures.empty());
  for (const auto& f : failures) {
    EXPECT_NE(f.error.find("timeout"), std::string::npos) << f.error;
  }
  // Survivors stay in enumeration order (ascending forkSalt order is
  // not observable here, but (g, r, bs) enumeration is).
  const auto all = app.enumerateConfigs(n);
  std::size_t cursor = 0;
  for (const auto& d : data) {
    while (cursor < all.size() &&
           (all[cursor].bs != d.config.bs || all[cursor].g != d.config.g ||
            all[cursor].r != d.config.r)) {
      ++cursor;
    }
    EXPECT_LT(cursor, all.size()) << "result out of enumeration order";
  }
}

TEST(StudyFaults, FailFastPropagatesTheFirstError) {
  apps::GpuMatMulOptions o = smallStudyOptions();
  o.faults.enabled = true;
  o.faults.timeoutRate = 1.0;
  o.robustness.timeoutRetries = 0;
  o.failPolicy = FailPolicy::FailFast;
  const apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaK40c()), o);
  Rng rng(100);
  EXPECT_THROW((void)app.runWorkload(2048, rng), power::MeasurementError);
}

TEST(StudyFaults, AllConfigsFailingFailsTheWorkload) {
  apps::GpuMatMulOptions o = smallStudyOptions();
  o.faults.enabled = true;
  o.faults.timeoutRate = 1.0;
  o.robustness.timeoutRetries = 0;
  o.failPolicy = FailPolicy::SkipAndRecord;
  const core::GpuEpStudy study(
      apps::GpuMatMulApp(hw::GpuModel(hw::nvidiaK40c()), o));
  Rng rng(101);
  // Every config skipped leaves nothing to build a front from.
  EXPECT_THROW((void)study.runWorkload(2048, rng), EpError);
}

TEST(StudyFaults, PoolSizeDoesNotChangeFaultedResults) {
  apps::GpuMatMulOptions o = smallStudyOptions();
  o.faults = FaultInjectionOptions::campaign(0.05);
  o.robustness.sanitizeSamples = true;
  o.robustness.rejectOutliers = true;
  o.failPolicy = FailPolicy::SkipAndRecord;
  const apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaK40c()), o);
  const int n = 2048;
  Rng serialRng(7);
  std::vector<apps::GpuConfigFailure> serialFailures;
  const auto serial = app.runWorkload(n, serialRng, nullptr, &serialFailures);
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    Rng rng(7);
    std::vector<apps::GpuConfigFailure> failures;
    const auto parallel = app.runWorkload(n, rng, &pool, &failures);
    ASSERT_EQ(parallel.size(), serial.size());
    ASSERT_EQ(failures.size(), serialFailures.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(core::doubleBits(parallel[i].time.value()),
                core::doubleBits(serial[i].time.value()));
      EXPECT_EQ(core::doubleBits(parallel[i].dynamicEnergy.value()),
                core::doubleBits(serial[i].dynamicEnergy.value()));
      EXPECT_EQ(parallel[i].repetitions, serial[i].repetitions);
    }
  }
}

// --- checkpoint / resume ---

class JournalTest : public ::testing::Test {
 protected:
  JournalTest()
      : app_(hw::GpuModel(hw::nvidiaK40c()), journalOptions()),
        study_(app_),
        path_(::testing::TempDir() + "epfault_journal_test.journal") {
    std::remove(path_.c_str());
  }
  ~JournalTest() override { std::remove(path_.c_str()); }

  static apps::GpuMatMulOptions journalOptions() {
    apps::GpuMatMulOptions o = smallStudyOptions();
    o.faults = FaultInjectionOptions::campaign(0.05);
    o.robustness.sanitizeSamples = true;
    o.robustness.rejectOutliers = true;
    o.failPolicy = FailPolicy::SkipAndRecord;
    return o;
  }

  static bool sameSweep(const std::vector<core::WorkloadResult>& a,
                        const std::vector<core::WorkloadResult>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].n != b[i].n || a[i].data.size() != b[i].data.size() ||
          a[i].failures.size() != b[i].failures.size()) {
        return false;
      }
      for (std::size_t j = 0; j < a[i].data.size(); ++j) {
        if (core::doubleBits(a[i].data[j].time.value()) !=
                core::doubleBits(b[i].data[j].time.value()) ||
            core::doubleBits(a[i].data[j].dynamicEnergy.value()) !=
                core::doubleBits(b[i].data[j].dynamicEnergy.value())) {
          return false;
        }
      }
    }
    return true;
  }

  apps::GpuMatMulApp app_;
  core::GpuEpStudy study_;
  std::string path_;
  const std::vector<int> sweep_{1536, 2048, 2560};
};

TEST_F(JournalTest, ResumeIsBitwiseIdenticalToUninterrupted) {
  core::SweepOptions plain;
  plain.workloadPolicy = FailPolicy::SkipAndRecord;
  Rng rngA(1234);
  const auto uninterrupted = study_.runSweepChecked(sweep_, rngA, plain);

  core::SweepOptions ckpt = plain;
  ckpt.checkpointPath = path_;
  {
    // "Crash" after the first workload only.
    const std::vector<int> half(sweep_.begin(), sweep_.begin() + 1);
    Rng rng(1234);
    const auto partial = study_.runSweepChecked(half, rng, ckpt);
    EXPECT_EQ(partial.resumedWorkloads, 0u);
  }
  Rng rngB(1234);
  const auto resumed = study_.runSweepChecked(sweep_, rngB, ckpt);
  EXPECT_EQ(resumed.resumedWorkloads, 1u);
  EXPECT_TRUE(sameSweep(uninterrupted.results, resumed.results));

  Rng rngC(1234);
  const auto replayed = study_.runSweepChecked(sweep_, rngC, ckpt);
  EXPECT_EQ(replayed.resumedWorkloads, sweep_.size());
  EXPECT_TRUE(sameSweep(uninterrupted.results, replayed.results));
}

TEST_F(JournalTest, TornTailIsIgnoredOnLoad) {
  core::SweepOptions ckpt;
  ckpt.workloadPolicy = FailPolicy::SkipAndRecord;
  ckpt.checkpointPath = path_;
  Rng rngA(55);
  const auto first = study_.runSweepChecked({sweep_[0]}, rngA, ckpt);
  ASSERT_EQ(first.results.size(), 1u);
  {
    // Simulate a crash mid-append: a workload header and one config
    // line with no terminating E record.
    std::ofstream tail(path_, std::ios::app);
    tail << "W 2048 5 0\nC 4 2 2 40340c0000";
  }
  Rng rngB(55);
  const auto resumed = study_.runSweepChecked(sweep_, rngB, ckpt);
  // Only the complete workload was restored; the torn one re-measures.
  EXPECT_EQ(resumed.resumedWorkloads, 1u);
  EXPECT_EQ(resumed.results.size(), sweep_.size());
}

TEST_F(JournalTest, HashMismatchRefusesTheJournal) {
  core::SweepOptions ckpt;
  ckpt.workloadPolicy = FailPolicy::SkipAndRecord;
  ckpt.checkpointPath = path_;
  Rng rngA(77);
  (void)study_.runSweepChecked({sweep_[0]}, rngA, ckpt);

  // Same options, different device: the checkpoint identity differs and
  // the journal must refuse to resume rather than silently merge.
  const core::GpuEpStudy p100(
      apps::GpuMatMulApp(hw::GpuModel(hw::nvidiaP100Pcie()),
                         journalOptions()));
  Rng rngB(77);
  EXPECT_THROW((void)p100.runSweepChecked({sweep_[0]}, rngB, ckpt),
               PreconditionError);
  // A different seed on the same device is refused too.
  Rng rngC(78);
  EXPECT_THROW((void)study_.runSweepChecked({sweep_[0]}, rngC, ckpt),
               PreconditionError);
}

TEST_F(JournalTest, MissingFileLoadsEmpty) {
  const auto loaded = core::StudyJournal::load(
      path_, study_.checkpointHash(123), app_);
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace ep::fault
