// Unit and property tests for epfft: radix-2, Bluestein, dispatch, 2D
// transforms, and the paper's work metric.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fft/fft.hpp"

namespace ep::fft {
namespace {

// O(n^2) reference DFT (forward, no scaling).
std::vector<Complex> naiveDft(const std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      sum += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<Complex> randomSignal(std::size_t n, Rng& rng) {
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return x;
}

void expectNear(const std::vector<Complex>& a, const std::vector<Complex>& b,
                double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].real(), b[i].real(), tol) << "re at " << i;
    ASSERT_NEAR(a[i].imag(), b[i].imag(), tol) << "im at " << i;
  }
}

TEST(FftRadix2, MatchesNaiveDft) {
  Rng rng(1);
  for (std::size_t n : {2u, 4u, 8u, 64u, 256u}) {
    auto x = randomSignal(n, rng);
    const auto expected = naiveDft(x, false);
    fftRadix2(x, false);
    expectNear(x, expected, 1e-8);
  }
}

TEST(FftRadix2, SizeOneIsIdentity) {
  std::vector<Complex> x{Complex(3.0, -2.0)};
  fftRadix2(x, false);
  EXPECT_DOUBLE_EQ(x[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(x[0].imag(), -2.0);
}

TEST(FftRadix2, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(6);
  EXPECT_THROW(fftRadix2(x, false), PreconditionError);
}

TEST(FftRadix2, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(16, Complex(0.0, 0.0));
  x[0] = Complex(1.0, 0.0);
  fftRadix2(x, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftRadix2, ConstantGivesImpulse) {
  std::vector<Complex> x(8, Complex(1.0, 0.0));
  fftRadix2(x, false);
  EXPECT_NEAR(x[0].real(), 8.0, 1e-12);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-12);
  }
}

TEST(FftBluestein, MatchesNaiveDftArbitrarySizes) {
  Rng rng(2);
  for (std::size_t n : {3u, 5u, 6u, 7u, 12u, 17u, 100u, 125u}) {
    auto x = randomSignal(n, rng);
    const auto expected = naiveDft(x, false);
    fftBluestein(x, false);
    expectNear(x, expected, 1e-7);
  }
}

TEST(FftBluestein, InverseMatchesNaive) {
  Rng rng(3);
  auto x = randomSignal(21, rng);
  const auto expected = naiveDft(x, true);
  fftBluestein(x, true);
  expectNear(x, expected, 1e-7);
}

TEST(FftBluestein, PowerOfTwoDelegatesToRadix2) {
  Rng rng(4);
  auto x = randomSignal(32, rng);
  auto y = x;
  fftBluestein(x, false);
  fftRadix2(y, false);
  expectNear(x, y, 1e-10);
}

TEST(Fft, RoundTripRecoversSignal) {
  Rng rng(5);
  for (std::size_t n : {8u, 15u, 125u}) {
    auto x = randomSignal(n, rng);
    const auto original = x;
    fft(x, false);
    ifftNormalized(x);
    expectNear(x, original, 1e-8);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(6);
  const std::size_t n = 64;
  auto x = randomSignal(n, rng);
  double timeEnergy = 0.0;
  for (const auto& v : x) timeEnergy += std::norm(v);
  fft(x, false);
  double freqEnergy = 0.0;
  for (const auto& v : x) freqEnergy += std::norm(v);
  EXPECT_NEAR(freqEnergy, timeEnergy * n, 1e-6 * timeEnergy * n);
}

TEST(Fft, LinearityProperty) {
  Rng rng(7);
  const std::size_t n = 40;
  const auto a = randomSignal(n, rng);
  const auto b = randomSignal(n, rng);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  auto fa = a, fb = b, fsum = sum;
  fft(fa, false);
  fft(fb, false);
  fft(fsum, false);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex expected = 2.0 * fa[i] + 3.0 * fb[i];
    ASSERT_NEAR(std::abs(fsum[i] - expected), 0.0, 1e-7);
  }
}

TEST(Fft2d, MatchesSeparableNaiveDft) {
  Rng rng(8);
  const std::size_t n = 6;
  auto data = randomSignal(n * n, rng);
  // Reference: DFT of rows then columns.
  std::vector<Complex> expected = data;
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<Complex> row(expected.begin() + r * n,
                             expected.begin() + (r + 1) * n);
    row = naiveDft(row, false);
    std::copy(row.begin(), row.end(), expected.begin() + r * n);
  }
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<Complex> col(n);
    for (std::size_t r = 0; r < n; ++r) col[r] = expected[r * n + c];
    col = naiveDft(col, false);
    for (std::size_t r = 0; r < n; ++r) expected[r * n + c] = col[r];
  }
  fft2d(n, data);
  expectNear(data, expected, 1e-7);
}

TEST(Fft2d, ParallelMatchesSequential) {
  Rng rng(9);
  const std::size_t n = 32;
  auto seq = randomSignal(n * n, rng);
  auto par = seq;
  fft2d(n, seq, nullptr);
  ThreadPool pool(4);
  fft2d(n, par, &pool);
  expectNear(par, seq, 1e-10);
}

TEST(Fft2d, RoundTrip) {
  Rng rng(10);
  const std::size_t n = 12;  // non power of two
  auto data = randomSignal(n * n, rng);
  const auto original = data;
  fft2d(n, data, nullptr, false);
  fft2d(n, data, nullptr, true);
  const double scale = 1.0 / static_cast<double>(n * n);
  for (auto& v : data) v *= scale;
  expectNear(data, original, 1e-8);
}

TEST(Fft2d, RejectsWrongSize) {
  std::vector<Complex> data(10);
  EXPECT_THROW(fft2d(4, data), PreconditionError);
}

TEST(FftWork, MatchesPaperFormula) {
  // W = 5 N^2 log2 N.
  EXPECT_DOUBLE_EQ(fftWork(2), 5.0 * 4.0 * 1.0);
  EXPECT_DOUBLE_EQ(fftWork(1024), 5.0 * 1024.0 * 1024.0 * 10.0);
  EXPECT_NEAR(fftWork(1000), 5.0 * 1e6 * std::log2(1000.0), 1e-3);
}

TEST(FftWork, RejectsTinySizes) {
  EXPECT_THROW((void)fftWork(1), PreconditionError);
}

// Parameterized round-trip across a size sweep including paper-like
// sizes (non powers of two).
class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  Rng rng(11 + GetParam());
  auto x = randomSignal(GetParam(), rng);
  const auto original = x;
  fft(x, false);
  ifftNormalized(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 3, 5, 8, 13, 27, 64, 125, 128,
                                           250, 256, 500, 1000));

}  // namespace
}  // namespace ep::fft
