// End-to-end reproduction tests: every headline observation of the
// paper's evaluation, asserted as a band on the simulated platform.
// These are the "shape" guarantees of DESIGN.md Section 6; the exact
// measured values are recorded in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cpu_dgemm_app.hpp"
#include "apps/fft2d_app.hpp"
#include "apps/gpu_matmul_app.hpp"
#include "core/definitions.hpp"
#include "core/metrics.hpp"
#include "core/study.hpp"
#include "energymodel/additivity.hpp"
#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"

namespace ep {
namespace {

// Noise-free app/study helpers (tests of the meter path live in
// test_apps.cpp; here we assert the architecture response itself).
apps::GpuMatMulApp gpuApp(const hw::GpuSpec& spec) {
  apps::GpuMatMulOptions opts;
  opts.useMeter = false;
  return apps::GpuMatMulApp(hw::GpuModel(spec), opts);
}

int bsOf(const core::WorkloadResult& r, const pareto::BiPoint& p) {
  return r.data[p.configId].config.bs;
}

// --- Fig 1: strong EP is violated on all three processors ---

TEST(Fig1, StrongEpViolatedOnAllThreeProcessors) {
  const std::vector<int> sizes{256,  384,  512,  768,  1024, 1536, 2048,
                               3072, 4096, 6144, 8192, 12288, 16384};
  apps::Fft2dOptions opts;
  opts.useMeter = false;
  Rng rng(1);

  const std::vector<apps::Fft2dApp> apps_ = {
      apps::Fft2dApp(hw::CpuModel(hw::haswellE52670v3()), opts),
      apps::Fft2dApp(hw::GpuModel(hw::nvidiaK40c()), opts),
      apps::Fft2dApp(hw::GpuModel(hw::nvidiaP100Pcie()), opts)};
  for (const auto& app : apps_) {
    std::vector<double> work, energy;
    for (const auto& p : app.runSweep(sizes, rng)) {
      work.push_back(p.work);
      energy.push_back(p.dynamicEnergy.value());
    }
    const auto r = core::analyzeStrongEp(work, energy, 0.05);
    EXPECT_FALSE(r.holds) << app.processorName();
    EXPECT_GT(r.maxRelativeDeviation, 0.15) << app.processorName();
  }
}

// --- Fig 2: P100 weak EP at N=18432 ---

TEST(Fig2, P100RegionsAndFrontAtN18432) {
  const auto app = gpuApp(hw::nvidiaP100Pcie());
  const core::GpuEpStudy study(app);
  Rng rng(2);
  const auto r = study.runWorkload(18432, rng);

  // Weak EP is violated: large energy spread across configurations.
  const auto weak = core::analyzeWeakEp(r.points, 0.05);
  EXPECT_FALSE(weak.holds);
  EXPECT_GT(weak.spread, 0.5);

  // The global front is small (paper: 2 points) and led by BS=32.
  EXPECT_GE(r.globalFront.size(), 2u);
  EXPECT_LE(r.globalFront.size(), 3u);
  EXPECT_EQ(bsOf(r, r.globalTradeoff.performanceOptimal), 32);

  // Bi-objective opportunity: ~12.5 % savings for ~2.5 % degradation
  // (band: 7..18 % savings at <= 6 % degradation).
  EXPECT_GT(r.globalTradeoff.maxEnergySavings, 0.07);
  EXPECT_LT(r.globalTradeoff.maxEnergySavings, 0.18);
  EXPECT_LT(r.globalTradeoff.performanceDegradation, 0.06);
}

TEST(Fig2, P100MonotoneRegionForSmallBs) {
  // "The top right plot shows a region ... where dynamic energy
  // increases monotonically with the execution time" (BS in [1, 20]):
  // in that region optimizing performance optimizes energy, i.e. the
  // fastest config is also the cheapest.
  const auto app = gpuApp(hw::nvidiaP100Pcie());
  Rng rng(3);
  const auto data = app.runWorkload(18432, rng);
  std::vector<pareto::BiPoint> region;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i].config.bs <= 20) region.push_back(data[i].toPoint(i));
  }
  const auto tr = pareto::analyzeTradeoff(region);
  // Performance optimum of the small-BS region is (nearly) the energy
  // optimum: savings below a few percent.
  EXPECT_LT(tr.maxEnergySavings, 0.05);
}

// --- Fig 4: CPU dynamic power vs utilization is non-functional ---

TEST(Fig4, PerformanceLinearThenPlateaus) {
  hw::CpuModel model(hw::haswellE52670v3());
  apps::CpuDgemmOptions opts;
  opts.useMeter = false;
  const apps::CpuDgemmApp app(model, opts);
  Rng rng(4);
  const auto points =
      app.runWorkload(17408, hw::BlasVariant::IntelMklLike, rng);
  double peak = 0.0;
  for (const auto& p : points) peak = std::max(peak, p.gflops);
  // Paper: plateau around 700 GFLOPs.
  EXPECT_NEAR(peak, 700.0, 150.0);
}

TEST(Fig4, DynamicPowerIsNotAFunctionOfUtilization) {
  hw::CpuModel model(hw::haswellE52670v3());
  apps::CpuDgemmOptions opts;
  opts.useMeter = false;
  const apps::CpuDgemmApp app(model, opts);
  Rng rng(5);
  for (const auto variant :
       {hw::BlasVariant::IntelMklLike, hw::BlasVariant::OpenBlasLike}) {
    const auto points = app.runWorkload(17408, variant, rng);
    std::vector<core::PowerSampleU> samples;
    for (const auto& p : points) {
      samples.push_back(
          {p.avgUtilizationPct / 100.0, p.dynamicPower.value()});
    }
    const auto scatter = core::analyzeScatter(samples, 10);
    // Same utilization bin, materially different powers.
    EXPECT_GT(scatter.maxResidual, 0.08);
  }
}

// --- Fig 6: dynamic-energy non-additivity and the 58 W component ---

class Fig6Additivity
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(Fig6Additivity, NonAdditiveBelowThresholdAdditiveAbove) {
  const auto [name, threshold] = GetParam();
  const hw::GpuSpec spec = std::string(name) == "k40c"
                               ? hw::nvidiaK40c()
                               : hw::nvidiaP100Pcie();
  const hw::GpuModel model(spec);
  auto err = [&](int n, int g) {
    const auto e1 = model.modelMatMul({n, 32, 1, 1}).dynamicEnergy();
    const auto eg = model.modelMatMul({n, 32, g, 1}).dynamicEnergy();
    return model::analyzeEnergyAdditivity(e1.value(), eg.value(), g).error;
  };
  // Highly non-additive at N=5120, decreasing with N, ~zero above the
  // processor-specific threshold — exactly the Fig 6 narrative.
  EXPECT_GT(err(5120, 4), 0.10);
  EXPECT_GT(err(5120, 4), err(8192, 4));
  EXPECT_GT(err(8192, 4), err(threshold, 4));
  EXPECT_LT(err(threshold + 2048, 2), 0.02);
  EXPECT_LT(err(threshold + 2048, 4), 0.06);
}

INSTANTIATE_TEST_SUITE_P(BothGpus, Fig6Additivity,
                         ::testing::Values(std::pair{"k40c", 10240},
                                           std::pair{"p100", 15360}));

TEST(Fig6, ReclassifyingUncoreAsStaticRestoresAdditivity) {
  // "If we include this dynamic power in the static power, then the
  // resulting dynamic energy consumption becomes additive."
  const hw::GpuModel model(hw::nvidiaP100Pcie());
  auto coreOnly = [&](int g) {
    const auto k = model.modelMatMul({5120, 32, g, 1});
    // Subtract the 58 W x window contribution, i.e. treat it as static.
    return k.dynamicEnergy().value() -
           k.uncorePower.value() *
               (k.time.value() + k.uncoreTail.value());
  };
  const double e1 = coreOnly(1);
  const double e4 = coreOnly(4);
  // Residual non-additivity after the reclassification comes only from
  // the small icache/warm-up time overheads of G > 1.
  EXPECT_NEAR(e4 / (4.0 * e1), 1.0, 0.05);
}

TEST(Fig6, ExecutionTimesAreAdditive) {
  // Paper: "The execution times are observed to be additive."
  for (const auto& spec : {hw::nvidiaK40c(), hw::nvidiaP100Pcie()}) {
    const hw::GpuModel model(spec);
    const double t1 = model.modelMatMul({5120, 32, 1, 1}).time.value();
    const double t4 = model.modelMatMul({5120, 32, 4, 1}).time.value();
    EXPECT_NEAR(t4 / (4.0 * t1), 1.0, 0.05) << spec.name;
  }
}

// --- Fig 7 / Section V-B: K40c fronts ---

TEST(Fig7, K40cGlobalFrontIsSinglePointAtBs32) {
  const auto app = gpuApp(hw::nvidiaK40c());
  const core::GpuEpStudy study(app);
  Rng rng(6);
  for (int n : {8704, 10240, 12288, 14336}) {
    const auto r = study.runWorkload(n, rng);
    EXPECT_EQ(r.globalFront.size(), 1u) << "N=" << n;
    EXPECT_EQ(bsOf(r, r.globalTradeoff.performanceOptimal), 32)
        << "N=" << n;
    // Performance-optimal == energy-optimal (paper, Section V-B).
    EXPECT_DOUBLE_EQ(r.globalTradeoff.maxEnergySavings, 0.0);
  }
}

TEST(Fig7, K40cLocalFrontsExposeTradeoffs) {
  const auto app = gpuApp(hw::nvidiaK40c());
  const core::GpuEpStudy study(app);
  Rng rng(7);
  const auto results = study.runSweep(
      {8704, 9728, 10240, 11264, 12288, 13312, 14336}, rng);
  const auto stats = core::GpuEpStudy::summarize(results);
  // Paper: average 4 and maximum 5 points in local fronts.
  EXPECT_GE(stats.avgLocalFrontSize, 2.5);
  EXPECT_LE(stats.avgLocalFrontSize, 5.5);
  EXPECT_GE(stats.maxLocalFrontSize, 4u);
  EXPECT_LE(stats.maxLocalFrontSize, 6u);
  // Paper: up to 18 % savings at 7 % degradation.
  EXPECT_NEAR(stats.maxLocalSavings, 0.18, 0.05);
  EXPECT_NEAR(stats.degradationAtMaxLocalSavings, 0.07, 0.04);
}

// --- Fig 8 / Section V-B: P100 fronts ---

TEST(Fig8, P100GlobalFrontAtN10240) {
  const auto app = gpuApp(hw::nvidiaP100Pcie());
  const core::GpuEpStudy study(app);
  Rng rng(8);
  const auto r = study.runWorkload(10240, rng);
  // Paper: three points; 11 % degradation buys 50 % savings.
  EXPECT_EQ(r.globalFront.size(), 3u);
  EXPECT_NEAR(r.globalTradeoff.maxEnergySavings, 0.50, 0.06);
  EXPECT_NEAR(r.globalTradeoff.performanceDegradation, 0.11, 0.03);
  EXPECT_EQ(bsOf(r, r.globalTradeoff.performanceOptimal), 32);
}

TEST(Fig8, P100FrontStatisticsAcrossWorkloads) {
  const auto app = gpuApp(hw::nvidiaP100Pcie());
  const core::GpuEpStudy study(app);
  Rng rng(9);
  const auto results = study.runSweep(
      {10240, 11264, 12288, 13312, 14336, 15360, 16384, 17408, 18432},
      rng);
  const auto stats = core::GpuEpStudy::summarize(results);
  // Paper: average 2 and maximum 3 points in global fronts.
  EXPECT_GE(stats.avgGlobalFrontSize, 1.8);
  EXPECT_LE(stats.avgGlobalFrontSize, 3.2);
  EXPECT_LE(stats.maxGlobalFrontSize, 3u);
  // Paper: maximum savings up to 50 % at up to 11 % degradation.
  EXPECT_NEAR(stats.maxGlobalSavings, 0.50, 0.06);
  EXPECT_NEAR(stats.degradationAtMaxGlobalSavings, 0.11, 0.04);
}

TEST(Fig8, MeteredPipelineReproducesTheN10240Front) {
  // The full stack (meter noise + CI protocol) preserves the headline
  // trade-off, not just the noise-free model.
  apps::GpuMatMulOptions opts;
  opts.useMeter = true;
  const apps::GpuMatMulApp app(hw::GpuModel(hw::nvidiaP100Pcie()), opts);
  const core::GpuEpStudy study(app);
  Rng rng(10);
  const auto r = study.runWorkload(10240, rng);
  EXPECT_NEAR(r.globalTradeoff.maxEnergySavings, 0.50, 0.08);
  EXPECT_NEAR(r.globalTradeoff.performanceDegradation, 0.11, 0.04);
}

// --- Section III: theory consistent with the simulated CPU ---

TEST(SectionIII, ImbalancedUtilizationCostsEnergyOnSimulatedCpu) {
  // The two-core theorem's qualitative prediction holds on the 48-core
  // model: at (nearly) equal average utilization, configurations whose
  // power the model attributes to more shared-resource contention (more
  // threadgroups) consume more dynamic energy for the same workload.
  hw::CpuModel model(hw::haswellE52670v3());
  hw::CpuDgemmConfig balanced;
  balanced.n = 17408;
  balanced.threadgroups = 1;
  balanced.threadsPerGroup = 24;
  hw::CpuDgemmConfig fragmented = balanced;
  fragmented.threadgroups = 12;
  fragmented.threadsPerGroup = 2;
  const auto a = model.modelDgemm(balanced);
  const auto b = model.modelDgemm(fragmented);
  EXPECT_GT(b.dynamicEnergy().value(), a.dynamicEnergy().value());
}

}  // namespace
}  // namespace ep
