// Unit tests for ephw's GPU model: Table I specs, CUDA occupancy
// arithmetic, roofline behaviour, the decision-variable mechanisms
// (BS, G, R), boost bins, and the 58 W uncore component gating.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"

namespace ep::hw {
namespace {

// --- Table I specs ---

TEST(GpuSpec, K40cMatchesTableI) {
  const GpuSpec s = nvidiaK40c();
  EXPECT_EQ(s.cudaCores, 2880);
  EXPECT_DOUBLE_EQ(s.baseClockMHz, 745.0);
  EXPECT_EQ(s.memoryGB, 12);
  EXPECT_EQ(s.l2KB, 1536);
  EXPECT_DOUBLE_EQ(s.tdp.value(), 235.0);
  EXPECT_FALSE(s.hasAutoBoost);
  EXPECT_DOUBLE_EQ(s.uncorePower.value(), 58.0);      // paper: Fig 6
  EXPECT_EQ(s.additivityThresholdN, 10240);           // paper: Sec V-A
}

TEST(GpuSpec, P100MatchesTableI) {
  const GpuSpec s = nvidiaP100Pcie();
  EXPECT_EQ(s.cudaCores, 3584);
  EXPECT_DOUBLE_EQ(s.boostClockMHz, 1328.0);
  EXPECT_EQ(s.memoryGB, 12);
  EXPECT_EQ(s.l2KB, 4096);
  EXPECT_DOUBLE_EQ(s.tdp.value(), 250.0);
  EXPECT_TRUE(s.hasAutoBoost);
  EXPECT_DOUBLE_EQ(s.uncorePower.value(), 58.0);      // paper: Fig 6
  EXPECT_EQ(s.additivityThresholdN, 15360);           // paper: Sec V-A
}

// --- occupancy arithmetic (checked against the CUDA occupancy rules) ---

TEST(Occupancy, Bs32IsSharedLimitedFullOccupancyOnP100) {
  const GpuModel m(nvidiaP100Pcie());
  const Occupancy o = m.occupancyFor(32);
  // 1024 threads and 16 KB shared per block: 2 blocks fit (threads).
  EXPECT_EQ(o.blocksPerSm, 2);
  EXPECT_EQ(o.threadsPerSm, 2048);
  EXPECT_DOUBLE_EQ(o.fraction, 1.0);
}

TEST(Occupancy, Bs24IsThreadLimitedOnP100) {
  const GpuModel m(nvidiaP100Pcie());
  const Occupancy o = m.occupancyFor(24);
  // 576 threads, 9.2 KB shared: 3 blocks by threads (2048/576), 6 by shared.
  EXPECT_EQ(o.blocksPerSm, 3);
  EXPECT_EQ(o.threadsPerSm, 1728);
  EXPECT_NEAR(o.fraction, 0.84375, 1e-9);
}

TEST(Occupancy, Bs16ReachesFullOccupancy) {
  for (const auto& spec : {nvidiaK40c(), nvidiaP100Pcie()}) {
    const GpuModel m(spec);
    const Occupancy o = m.occupancyFor(16);
    EXPECT_EQ(o.threadsPerSm, 2048) << spec.name;
  }
}

TEST(Occupancy, TinyBlocksAreSlotLimited) {
  const GpuModel k40(nvidiaK40c());
  const Occupancy o = k40.occupancyFor(1);
  EXPECT_EQ(o.blocksPerSm, 16);  // maxBlocksPerSM
  EXPECT_EQ(o.threadsPerSm, 16);
  EXPECT_STREQ(o.limitedBy, "blocks");
}

TEST(Occupancy, OversizedBlockThrows) {
  const GpuModel m(nvidiaP100Pcie());
  EXPECT_THROW((void)m.occupancyFor(33), ResourceError);  // 1089 threads
  EXPECT_THROW((void)m.occupancyFor(0), PreconditionError);
}

TEST(Occupancy, SharedMemoryPerBlockIsTwoTilesOfDoubles) {
  // 2 * 8 * BS^2 must drive the shared limit: BS=32 uses 16 KB.
  const GpuModel m(nvidiaP100Pcie());
  // With 64 KB per SM and 16 KB per block, shared would allow 4 blocks;
  // threads (2048/1024 = 2) must be the binding limit.
  EXPECT_STREQ(m.occupancyFor(32).limitedBy, "threads");
}

// --- launchability ---

TEST(Launchable, MemoryCapacityGatesLargeN) {
  const GpuModel m(nvidiaP100Pcie());  // 12 GB
  MatMulConfig ok{18432, 32, 1, 1};    // 3 * 8 * 18432^2 = 8.1 GB
  MatMulConfig tooBig{25000, 32, 1, 1};  // 15 GB
  EXPECT_TRUE(m.isLaunchable(ok));
  EXPECT_FALSE(m.isLaunchable(tooBig));
}

TEST(Launchable, RejectsDegenerateConfigs) {
  const GpuModel m(nvidiaK40c());
  EXPECT_FALSE(m.isLaunchable({0, 32, 1, 1}));
  EXPECT_FALSE(m.isLaunchable({1024, 0, 1, 1}));
  EXPECT_FALSE(m.isLaunchable({1024, 33, 1, 1}));
  EXPECT_FALSE(m.isLaunchable({1024, 32, 0, 1}));
  EXPECT_THROW((void)m.modelMatMul({1024, 33, 1, 1}), ResourceError);
}

// --- kernel model: work accounting ---

TEST(MatMulModel, FlopAndByteCountsExactWhenBsDividesN) {
  const GpuModel m(nvidiaP100Pcie());
  const auto k = m.modelMatMul({1024, 32, 1, 1});
  EXPECT_EQ(k.flopCount, 2ULL * 1024 * 1024 * 1024);
  // 2*8*N^2*(N/BS) + 3*8*N^2.
  const std::uint64_t expectedBytes =
      16ULL * 1024 * 1024 * 32 + 24ULL * 1024 * 1024;
  EXPECT_EQ(k.dramBytes, expectedBytes);
}

TEST(MatMulModel, WorkScalesWithGAndR) {
  const GpuModel m(nvidiaP100Pcie());
  const auto k1 = m.modelMatMul({2048, 16, 1, 1});
  const auto k4 = m.modelMatMul({2048, 16, 2, 2});
  EXPECT_EQ(k4.flopCount, 4 * k1.flopCount);
  EXPECT_EQ(k4.dramBytes, 4 * k1.dramBytes);
}

TEST(MatMulModel, TilePaddingInflatesWork) {
  const GpuModel m(nvidiaP100Pcie());
  const auto exact = m.modelMatMul({1024, 32, 1, 1});
  const auto padded = m.modelMatMul({1000, 32, 1, 1});  // 32 tiles of 32
  // ceil(1000/32) = 32 tiles -> padded volume equals the 1024 case.
  EXPECT_EQ(padded.flopCount, exact.flopCount);
}

TEST(MatMulModel, ExecutionTimesAreAdditiveInProducts) {
  // The paper observes execution times to be additive (Section V-A);
  // textual repetition costs only a small icache overhead.
  const GpuModel m(nvidiaP100Pcie());
  const auto k1 = m.modelMatMul({10240, 32, 1, 1});
  const auto k4 = m.modelMatMul({10240, 32, 4, 1});
  EXPECT_NEAR(k4.time.value() / k1.time.value(), 4.0, 0.25);
}

// --- mechanisms ---

TEST(MatMulModel, LargerBsIsFasterInTheMemoryBoundRegion) {
  // BS 1..14: global traffic ~1/BS dominates.
  const GpuModel m(nvidiaP100Pcie());
  double prev = m.modelMatMul({4096, 1, 1, 1}).time.value();
  for (int bs = 2; bs <= 12; ++bs) {
    const double t = m.modelMatMul({4096, bs, 1, 1}).time.value();
    EXPECT_LT(t, prev) << "BS=" << bs;
    prev = t;
  }
}

TEST(MatMulModel, Bs32IsThePerformanceOptimum) {
  for (const auto& spec : {nvidiaK40c(), nvidiaP100Pcie()}) {
    const GpuModel m(spec);
    const double t32 = m.modelMatMul({10240, 32, 1, 1}).time.value();
    for (int bs = 1; bs < 32; ++bs) {
      EXPECT_GT(m.modelMatMul({10240, bs, 1, 1}).time.value(), t32)
          << spec.name << " BS=" << bs;
    }
  }
}

TEST(MatMulModel, IcachePressureSlowsLargeG) {
  const GpuModel m(nvidiaK40c());
  const auto g1 = m.modelMatMul({8192, 32, 1, 8});
  const auto g8 = m.modelMatMul({8192, 32, 8, 1});
  EXPECT_GT(g8.time.value() / 8.0 * 8.0, g1.time.value() * 0.99);
  // Same total products; G=8 strictly slower per product.
  EXPECT_GT(g8.time.value(), g1.time.value() * 0.98);
}

TEST(MatMulModel, BoostOnlyOnAutoBoostParts) {
  const GpuModel k40(nvidiaK40c());
  const GpuModel p100(nvidiaP100Pcie());
  EXPECT_DOUBLE_EQ(k40.modelMatMul({10240, 32, 1, 1}).boostRatio, 1.0);
  EXPECT_GT(p100.modelMatMul({10240, 32, 1, 1}).boostRatio, 1.1);
}

TEST(MatMulModel, BoostBinsFollowResidentBlockCount) {
  const GpuModel m(nvidiaP100Pcie());
  const double top = m.modelMatMul({10240, 32, 1, 1}).boostRatio;   // 2 blocks
  const double mid = m.modelMatMul({10240, 24, 1, 1}).boostRatio;   // 3 blocks
  const double base = m.modelMatMul({10240, 16, 1, 1}).boostRatio;  // 8 blocks
  EXPECT_GT(top, mid);
  EXPECT_GT(mid, base);
  EXPECT_DOUBLE_EQ(base, 1.0);
  EXPECT_NEAR(top, nvidiaP100Pcie().clockRatioBoost(), 1e-12);
}

// --- the 58 W uncore component (Fig 6 machinery) ---

TEST(Uncore, GatedBySizeThresholdOnK40c) {
  const GpuModel m(nvidiaK40c());
  EXPECT_TRUE(m.modelMatMul({10240, 32, 1, 1}).uncoreActive);
  EXPECT_FALSE(m.modelMatMul({12288, 32, 1, 1}).uncoreActive);
}

TEST(Uncore, GatedBySizeAndTopBinOnP100) {
  const GpuModel m(nvidiaP100Pcie());
  EXPECT_TRUE(m.modelMatMul({10240, 32, 1, 1}).uncoreActive);   // top bin
  EXPECT_FALSE(m.modelMatMul({10240, 24, 1, 1}).uncoreActive);  // mid bin
  EXPECT_FALSE(m.modelMatMul({16384, 32, 1, 1}).uncoreActive);  // above thr
  EXPECT_TRUE(m.modelMatMul({15360, 32, 1, 1}).uncoreActive);   // at thr
}

TEST(Uncore, Draws58Watts) {
  const GpuModel m(nvidiaP100Pcie());
  const auto k = m.modelMatMul({10240, 32, 1, 1});
  EXPECT_DOUBLE_EQ(k.uncorePower.value(), 58.0);  // paper: Section V-A
  EXPECT_GT(k.uncoreTail.value(), 0.0);
}

TEST(Uncore, DynamicEnergyIncludesTailOncePerLaunch) {
  const GpuModel m(nvidiaP100Pcie());
  const auto k = m.modelMatMul({10240, 32, 1, 1});
  const double expected =
      k.corePower.value() * k.time.value() +
      58.0 * (k.time.value() + k.uncoreTail.value());
  EXPECT_NEAR(k.dynamicEnergy().value(), expected, 1e-9);
}

TEST(Uncore, NonAdditivityDecreasesWithN) {
  // Fig 6: relative non-additivity shrinks as N grows.
  const GpuModel m(nvidiaP100Pcie());
  auto nonAdditivity = [&](int n) {
    const double e1 = m.modelMatMul({n, 32, 1, 1}).dynamicEnergy().value();
    const double e4 = m.modelMatMul({n, 32, 4, 1}).dynamicEnergy().value();
    return std::fabs(e4 - 4.0 * e1) / (4.0 * e1);
  };
  const double at5120 = nonAdditivity(5120);
  const double at10240 = nonAdditivity(10240);
  const double at15360 = nonAdditivity(15360);
  EXPECT_GT(at5120, at10240);
  EXPECT_GT(at10240, at15360);
  EXPECT_GT(at5120, 0.10);  // "highly non-additive"
}

TEST(Uncore, AdditiveAboveThreshold) {
  const GpuModel m(nvidiaP100Pcie());
  const double e1 =
      m.modelMatMul({16384, 32, 1, 1}).dynamicEnergy().value();
  const double e4 =
      m.modelMatMul({16384, 32, 4, 1}).dynamicEnergy().value();
  EXPECT_NEAR(e4 / (4.0 * e1), 1.0, 0.05);
}

// --- power sanity ---

TEST(Power, DynamicPowerWithinBoardLimits) {
  for (const auto& spec : {nvidiaK40c(), nvidiaP100Pcie()}) {
    const GpuModel m(spec);
    for (int bs : {4, 8, 16, 24, 27, 32}) {
      const auto k = m.modelMatMul({10240, bs, 1, 1});
      EXPECT_GT(k.dynamicPower().value(), 0.0) << spec.name << " " << bs;
      EXPECT_LT(k.dynamicPower().value(),
                spec.tdp.value() - spec.boardIdlePower.value() + 15.0)
          << spec.name << " BS=" << bs;
    }
  }
}

TEST(Power, AchievedThroughputBelowPeak) {
  const GpuModel m(nvidiaP100Pcie());
  const auto k = m.modelMatMul({10240, 32, 1, 1});
  EXPECT_LT(k.achievedGflops,
            nvidiaP100Pcie().peakGflopsDouble *
                nvidiaP100Pcie().clockRatioBoost());
  EXPECT_LT(k.achievedBandwidthGBs, nvidiaP100Pcie().memBandwidthGBs);
}

// --- FFT model (Fig 1 GPU curves) ---

TEST(FftModel, WorkMetricIsPaperFormula) {
  const GpuModel m(nvidiaK40c());
  const auto k = m.modelFft2d(1024);
  EXPECT_NEAR(static_cast<double>(k.flopCount),
              5.0 * 1024.0 * 1024.0 * 10.0, 1.0);
}

TEST(FftModel, ThroughputImprovesWithSize) {
  // Small transforms underutilize the device.
  const GpuModel m(nvidiaP100Pcie());
  const auto small = m.modelFft2d(256);
  const auto large = m.modelFft2d(8192);
  EXPECT_GT(large.achievedGflops, small.achievedGflops);
}

TEST(FftModel, NonPowerOfTwoPaysRadixPenalty) {
  const GpuModel m(nvidiaP100Pcie());
  // 4096 vs 4099 (prime): comparable W, very different efficiency.
  const auto fast = m.modelFft2d(4096);
  const auto slow = m.modelFft2d(4099);
  const double rateFast =
      static_cast<double>(fast.flopCount) / fast.time.value();
  const double rateSlow =
      static_cast<double>(slow.flopCount) / slow.time.value();
  EXPECT_GT(rateFast, rateSlow * 1.5);
}

TEST(FftModel, UncoreKinkAtThreshold) {
  const GpuModel m(nvidiaP100Pcie());
  EXPECT_TRUE(m.modelFft2d(15000).uncoreActive);
  EXPECT_FALSE(m.modelFft2d(16000).uncoreActive);
}

// Parameterized sweep: every launchable BS yields positive, finite time
// and energy, and occupancy in (0, 1].
class BsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BsSweep, ModelIsWellFormedForAllBs) {
  for (const auto& spec : {nvidiaK40c(), nvidiaP100Pcie()}) {
    const GpuModel m(spec);
    const auto k = m.modelMatMul({4096, GetParam(), 2, 2});
    EXPECT_TRUE(std::isfinite(k.time.value()));
    EXPECT_GT(k.time.value(), 0.0);
    EXPECT_GT(k.dynamicEnergy().value(), 0.0);
    EXPECT_GT(k.occupancy.fraction, 0.0);
    EXPECT_LE(k.occupancy.fraction, 1.0);
    EXPECT_GE(k.boostRatio, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBlockSizes, BsSweep, ::testing::Range(1, 33));

}  // namespace
}  // namespace ep::hw

// --- mechanism-ablation invariants (appended; mirrors the ablation
// bench so regressions in mechanism attribution are caught) ---

#include "apps/gpu_matmul_app.hpp"
#include "core/study.hpp"

namespace ep::hw {
namespace {

double savingsWith(const GpuSpec& spec, const GpuTuning& tuning) {
  apps::GpuMatMulOptions opts;
  opts.useMeter = false;
  const apps::GpuMatMulApp app(GpuModel(spec, tuning), opts);
  const core::GpuEpStudy study(app);
  Rng rng(12);
  return study.runWorkload(10240, rng).globalTradeoff.maxEnergySavings;
}

TEST(Ablation, UncoreComponentCarriesTheHeadlineSavings) {
  const GpuSpec spec = nvidiaP100Pcie();
  const GpuTuning base = GpuModel(spec).tuning();
  const double baseline = savingsWith(spec, base);
  GpuSpec noUncore = spec;
  noUncore.uncorePower = Watts{0.0};
  const double without = savingsWith(noUncore, base);
  EXPECT_GT(baseline, 0.40);
  EXPECT_LT(without, 0.20);
}

TEST(Ablation, DisablingAutoboostMakesP100BehaveLikeK40c) {
  GpuSpec fixedClocks = nvidiaP100Pcie();
  fixedClocks.hasAutoBoost = false;
  const double savings =
      savingsWith(fixedClocks, GpuModel(nvidiaP100Pcie()).tuning());
  EXPECT_LT(savings, 0.10);
}

TEST(Ablation, ResidencyPowerShapesTheFrontNotTheHeadline) {
  const GpuSpec spec = nvidiaP100Pcie();
  GpuTuning noRes = GpuModel(spec).tuning();
  noRes.residencyPower = 0.0;
  // The headline savings survive (uncore-driven), within a band.
  EXPECT_GT(savingsWith(spec, noRes), 0.40);
}

}  // namespace
}  // namespace ep::hw
