// Tests for epdvfs: P-state tables, the DVFS processor response,
// governors, and the system-level bi-objective baselines.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dvfs/governor.hpp"
#include "dvfs/optimize.hpp"
#include "dvfs/processor.hpp"
#include "dvfs/pstate.hpp"
#include "hw/spec.hpp"
#include "pareto/front.hpp"

namespace ep::dvfs {
namespace {

DvfsProcessor haswellNode() {
  return DvfsProcessor::fromCpuSpec(hw::haswellE52670v3());
}

// --- P-states ---

TEST(PStates, HaswellLadderIsWellFormed) {
  const PStateTable t = haswellPStates();
  EXPECT_GE(t.size(), 10u);
  EXPECT_DOUBLE_EQ(t.lowest().freqMHz, 1200.0);
  EXPECT_DOUBLE_EQ(t.highest().freqMHz, 3100.0);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i].freqMHz, t[i - 1].freqMHz);
    EXPECT_GE(t[i].voltage, t[i - 1].voltage);
  }
}

TEST(PStates, AtLeastFindsSmallestSufficientState) {
  const PStateTable t = haswellPStates();
  EXPECT_DOUBLE_EQ(t.atLeast(1500.0).freqMHz, 1500.0);
  EXPECT_DOUBLE_EQ(t.atLeast(1550.0).freqMHz, 1600.0);
  EXPECT_DOUBLE_EQ(t.atLeast(9999.0).freqMHz, 3100.0);
}

TEST(PStates, RejectsMalformedTables) {
  EXPECT_THROW(PStateTable({}), PreconditionError);
  EXPECT_THROW(PStateTable({{2000.0, 1.0}, {1000.0, 1.0}}),
               PreconditionError);
  EXPECT_THROW(PStateTable({{1000.0, 1.0}, {2000.0, 0.9}}),
               PreconditionError);
}

// --- processor response ---

TEST(Processor, ComputeBoundTimeScalesInverselyWithFrequency) {
  const DvfsProcessor p = haswellNode();
  const Workload w{1000.0, 0.0};  // fully compute bound
  const auto lo = p.run(w, p.table().lowest());
  const auto hi = p.run(w, p.table().highest());
  EXPECT_NEAR(lo.time.value() / hi.time.value(),
              p.table().highest().freqMHz / p.table().lowest().freqMHz,
              1e-9);
}

TEST(Processor, MemoryBoundTimeInsensitiveToFrequency) {
  const DvfsProcessor p = haswellNode();
  const Workload w{1000.0, 0.95};  // almost fully memory bound
  const auto lo = p.run(w, p.table().lowest());
  const auto hi = p.run(w, p.table().highest());
  // A 2.6x clock difference buys only a few percent.
  EXPECT_LT(lo.time.value() / hi.time.value(), 1.15);
}

TEST(Processor, PowerGrowsSuperlinearlyWithFrequency) {
  const DvfsProcessor p = haswellNode();
  const Workload w{1000.0, 0.0};
  const auto lo = p.run(w, p.table().lowest());
  const auto hi = p.run(w, p.table().highest());
  const double fRatio =
      p.table().highest().freqMHz / p.table().lowest().freqMHz;
  EXPECT_GT(hi.dynamicPower.value() / lo.dynamicPower.value(), fRatio);
}

TEST(Processor, MemoryBoundWorkloadSavesEnergyAtLowFrequency) {
  // The classic DVFS result: down-clocking a memory-bound code costs
  // little time but saves real energy.
  const DvfsProcessor p = haswellNode();
  const Workload w{1000.0, 0.9};
  const auto lo = p.run(w, p.table().lowest());
  const auto hi = p.run(w, p.table().highest());
  EXPECT_LT(lo.dynamicEnergy.value(), hi.dynamicEnergy.value());
}

TEST(Processor, RejectsBadWorkloads) {
  const DvfsProcessor p = haswellNode();
  EXPECT_THROW((void)p.run({0.0, 0.0}, p.table().lowest()),
               PreconditionError);
  EXPECT_THROW((void)p.run({1.0, 1.5}, p.table().lowest()),
               PreconditionError);
}

// --- governors ---

TEST(Governor, PerformanceStaysAtMax) {
  GovernorSim g(haswellPStates(), GovernorPolicy::kPerformance);
  EXPECT_DOUBLE_EQ(g.current().freqMHz, 3100.0);
  g.step(0.0);
  EXPECT_DOUBLE_EQ(g.current().freqMHz, 3100.0);
}

TEST(Governor, PowersaveStaysAtMin) {
  GovernorSim g(haswellPStates(), GovernorPolicy::kPowersave);
  g.step(1.0);
  EXPECT_DOUBLE_EQ(g.current().freqMHz, 1200.0);
}

TEST(Governor, OndemandJumpsUpAndDecaysDown) {
  GovernorSim g(haswellPStates(), GovernorPolicy::kOndemand);
  EXPECT_DOUBLE_EQ(g.current().freqMHz, 1200.0);
  g.step(0.95);  // busy -> jump to max
  EXPECT_DOUBLE_EQ(g.current().freqMHz, 3100.0);
  g.step(0.1);  // quiet -> step down one bin
  EXPECT_LT(g.current().freqMHz, 3100.0);
  // Mid-range utilization holds the current state.
  const double f = g.current().freqMHz;
  g.step(0.5);
  EXPECT_DOUBLE_EQ(g.current().freqMHz, f);
}

TEST(Governor, RunProducesOneStatePerSample) {
  GovernorSim g(haswellPStates(), GovernorPolicy::kOndemand);
  const auto states = g.run({0.9, 0.9, 0.1, 0.1, 0.5});
  EXPECT_EQ(states.size(), 5u);
  EXPECT_THROW((void)g.step(1.5), PreconditionError);
}

// --- baselines ---

TEST(Optimize, DeadlineSelectsCheapestFeasibleState) {
  const DvfsProcessor p = haswellNode();
  const Workload w{5000.0, 0.3};
  const auto fastest = p.run(w, p.table().highest());
  // Deadline 30% above the fastest time: a slower, cheaper state fits.
  const auto r = minimizeEnergyUnderDeadline(
      p, w, Seconds{1.3 * fastest.time.value()});
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->time.value(), 1.3 * fastest.time.value());
  EXPECT_LT(r->dynamicEnergy.value(), fastest.dynamicEnergy.value());
  EXPECT_LT(r->state.freqMHz, p.table().highest().freqMHz);
}

TEST(Optimize, ImpossibleDeadlineReturnsNullopt) {
  const DvfsProcessor p = haswellNode();
  const Workload w{5000.0, 0.3};
  const auto fastest = p.run(w, p.table().highest());
  EXPECT_FALSE(minimizeEnergyUnderDeadline(
                   p, w, Seconds{0.5 * fastest.time.value()})
                   .has_value());
}

TEST(Optimize, BudgetSelectsFastestAffordableState) {
  const DvfsProcessor p = haswellNode();
  const Workload w{5000.0, 0.3};
  const auto cheapest = p.run(w, p.table().lowest());
  const auto r = maximizePerformanceUnderBudget(
      p, w, Joules{1.2 * cheapest.dynamicEnergy.value()});
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->dynamicEnergy.value(),
            1.2 * cheapest.dynamicEnergy.value());
  EXPECT_LE(r->time.value(), cheapest.time.value());
}

TEST(Optimize, TinyBudgetReturnsNullopt) {
  const DvfsProcessor p = haswellNode();
  const Workload w{5000.0, 0.3};
  EXPECT_FALSE(
      maximizePerformanceUnderBudget(p, w, Joules{1.0}).has_value());
}

TEST(Optimize, DvfsFrontIsValidAndMultiPoint) {
  const DvfsProcessor p = haswellNode();
  const Workload w{5000.0, 0.5};
  const auto pts = dvfsPoints(p, w);
  EXPECT_EQ(pts.size(), p.table().size());
  const auto front = dvfsParetoFront(p, w);
  EXPECT_GE(front.size(), 2u);  // frequency IS a real trade-off knob
  EXPECT_TRUE(pareto::isValidFront(front, pts));
}

TEST(Optimize, ComputeBoundFrontDegenerates) {
  // Fully compute-bound: E ~ V^2 work, still decreasing toward low f,
  // so the front spans states; but the TIME ordering must follow
  // frequency exactly.
  const DvfsProcessor p = haswellNode();
  const auto pts = dvfsPoints(p, {5000.0, 0.0});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].time, pts[i - 1].time);  // higher f = faster
  }
}

}  // namespace
}  // namespace ep::dvfs
