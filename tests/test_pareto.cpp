// Unit and property tests for eppareto: dominance, fronts,
// non-dominated sorting, hypervolume, and trade-off analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pareto/front.hpp"
#include "pareto/point.hpp"
#include "pareto/streaming_front.hpp"
#include "pareto/tradeoff.hpp"

namespace ep::pareto {
namespace {

BiPoint mk(double t, double e, std::uint64_t id = 0) {
  BiPoint p;
  p.time = Seconds{t};
  p.energy = Joules{e};
  p.configId = id;
  return p;
}

// --- dominance ---

TEST(Dominance, StrictlyBetterInBothDominates) {
  EXPECT_TRUE(dominates(mk(1.0, 1.0), mk(2.0, 2.0)));
}

TEST(Dominance, BetterInOneEqualInOtherDominates) {
  EXPECT_TRUE(dominates(mk(1.0, 2.0), mk(2.0, 2.0)));
  EXPECT_TRUE(dominates(mk(2.0, 1.0), mk(2.0, 2.0)));
}

TEST(Dominance, EqualPointsDoNotDominate) {
  EXPECT_FALSE(dominates(mk(1.0, 1.0), mk(1.0, 1.0)));
}

TEST(Dominance, TradeoffPointsDoNotDominate) {
  EXPECT_FALSE(dominates(mk(1.0, 3.0), mk(3.0, 1.0)));
  EXPECT_FALSE(dominates(mk(3.0, 1.0), mk(1.0, 3.0)));
}

TEST(Dominance, IsAsymmetric) {
  const BiPoint a = mk(1.0, 1.0);
  const BiPoint b = mk(2.0, 2.0);
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

// --- paretoFront ---

TEST(Front, SinglePoint) {
  const auto f = paretoFront({mk(1.0, 1.0)});
  ASSERT_EQ(f.size(), 1u);
}

TEST(Front, ChainOfDominatedPointsCollapses) {
  const auto f = paretoFront({mk(1, 1), mk(2, 2), mk(3, 3), mk(4, 4)});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].time.value(), 1.0);
}

TEST(Front, AntiChainAllSurvive) {
  const auto f = paretoFront({mk(1, 4), mk(2, 3), mk(3, 2), mk(4, 1)});
  EXPECT_EQ(f.size(), 4u);
}

TEST(Front, SortedByAscendingTime) {
  const auto f = paretoFront({mk(4, 1), mk(1, 4), mk(3, 2), mk(2, 3)});
  ASSERT_EQ(f.size(), 4u);
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_LT(f[i - 1].time, f[i].time);
  }
}

TEST(Front, MixedCase) {
  // (2,2) dominates (3,3); front is {(1,4), (2,2), (5,1)}.
  const auto f = paretoFront({mk(1, 4), mk(3, 3), mk(2, 2), mk(5, 1)});
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].energy.value(), 4.0);
  EXPECT_EQ(f[1].energy.value(), 2.0);
  EXPECT_EQ(f[2].energy.value(), 1.0);
}

TEST(Front, DuplicateObjectivePointsAllKept) {
  const auto f = paretoFront({mk(1, 1, 0), mk(1, 1, 1), mk(2, 2, 2)});
  EXPECT_EQ(f.size(), 2u);  // both copies of (1,1); (2,2) dominated
}

TEST(Front, EmptyInputGivesEmptyFront) {
  const auto f = paretoFront({});
  EXPECT_TRUE(f.empty());
}

// Property: front validity on random clouds.
TEST(FrontProperty, RandomCloudsProduceValidFronts) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BiPoint> pts;
    const int n = 2 + static_cast<int>(rng.uniformInt(0, 60));
    for (int i = 0; i < n; ++i) {
      pts.push_back(mk(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                       static_cast<std::uint64_t>(i)));
    }
    const auto f = paretoFront(pts);
    EXPECT_FALSE(f.empty());
    EXPECT_TRUE(isValidFront(f, pts));
  }
}

// --- non-dominated sorting ---

TEST(NonDominatedSort, PartitionsAllPoints) {
  Rng rng(78);
  std::vector<BiPoint> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back(mk(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                     static_cast<std::uint64_t>(i)));
  }
  const auto fronts = nonDominatedSort(pts);
  std::size_t total = 0;
  for (const auto& f : fronts) total += f.size();
  EXPECT_EQ(total, pts.size());
}

TEST(NonDominatedSort, LaterFrontsDominatedByEarlier) {
  const auto fronts =
      nonDominatedSort({mk(1, 1, 0), mk(2, 2, 1), mk(3, 3, 2)});
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0][0].configId, 0u);
  EXPECT_EQ(fronts[1][0].configId, 1u);
  EXPECT_EQ(fronts[2][0].configId, 2u);
}

TEST(NonDominatedSort, AntiChainIsSingleFront) {
  const auto fronts = nonDominatedSort({mk(1, 3), mk(2, 2), mk(3, 1)});
  EXPECT_EQ(fronts.size(), 1u);
}

TEST(LocalFront, LevelOneEqualsGlobalFront) {
  const std::vector<BiPoint> pts{mk(1, 1, 0), mk(2, 2, 1), mk(3, 1.5, 2)};
  EXPECT_EQ(localFront(pts, 1).size(), paretoFront(pts).size());
}

TEST(LocalFront, MissingLevelIsEmpty) {
  const std::vector<BiPoint> pts{mk(1, 3), mk(2, 2), mk(3, 1)};
  EXPECT_TRUE(localFront(pts, 2).empty());
}

TEST(LocalFront, LevelZeroThrows) {
  const std::vector<BiPoint> pts{mk(1, 1)};
  EXPECT_THROW((void)localFront(pts, 0), PreconditionError);
}

// The pre-optimization quadratic peel (repeated paretoFront + erase),
// kept here as the reference oracle for the O(n log n) sweep.
std::vector<std::vector<BiPoint>> referenceNonDominatedSort(
    std::vector<BiPoint> points) {
  std::vector<std::vector<BiPoint>> fronts;
  while (!points.empty()) {
    std::vector<BiPoint> front = paretoFront(points);
    auto inFront = [&front](const BiPoint& p) {
      return std::any_of(front.begin(), front.end(), [&p](const BiPoint& f) {
        return f.configId == p.configId && f.time == p.time &&
               f.energy == p.energy;
      });
    };
    points.erase(std::remove_if(points.begin(), points.end(), inFront),
                 points.end());
    fronts.push_back(std::move(front));
  }
  return fronts;
}

void expectSameFronts(const std::vector<std::vector<BiPoint>>& got,
                      const std::vector<std::vector<BiPoint>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f].size(), want[f].size()) << "front " << f;
    for (std::size_t i = 0; i < got[f].size(); ++i) {
      EXPECT_EQ(got[f][i].configId, want[f][i].configId)
          << "front " << f << " index " << i;
      EXPECT_EQ(got[f][i].time, want[f][i].time);
      EXPECT_EQ(got[f][i].energy, want[f][i].energy);
    }
  }
}

TEST(NonDominatedSort, MatchesReferenceOnRandomClouds) {
  Rng rng(20260807);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<BiPoint> pts;
    const int n = 1 + static_cast<int>(rng.uniformInt(0, 120));
    for (int i = 0; i < n; ++i) {
      pts.push_back(mk(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                       static_cast<std::uint64_t>(i)));
    }
    const auto fronts = nonDominatedSort(pts);
    expectSameFronts(fronts, referenceNonDominatedSort(pts));
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      // Validity per level: mutually non-dominating, and nothing in
      // this or any deeper front dominates a member.
      std::vector<BiPoint> remaining;
      for (std::size_t g = f; g < fronts.size(); ++g) {
        remaining.insert(remaining.end(), fronts[g].begin(), fronts[g].end());
      }
      EXPECT_TRUE(isValidFront(fronts[f], remaining)) << "front " << f;
    }
  }
}

TEST(NonDominatedSort, MatchesReferenceWithDuplicateObjectives) {
  // Coarse grids force ties in one or both objectives, including exact
  // duplicate-objective points (mutually non-dominating — must land on
  // the SAME front, in configId order).
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<BiPoint> pts;
    const int n = 1 + static_cast<int>(rng.uniformInt(0, 80));
    for (int i = 0; i < n; ++i) {
      pts.push_back(mk(static_cast<double>(rng.uniformInt(1, 4)),
                       static_cast<double>(rng.uniformInt(1, 4)),
                       static_cast<std::uint64_t>(i)));
    }
    const auto fronts = nonDominatedSort(pts);
    expectSameFronts(fronts, referenceNonDominatedSort(pts));
  }
}

TEST(NonDominatedSort, ExactDuplicatesShareAFront) {
  const auto fronts = nonDominatedSort(
      {mk(1, 1, 0), mk(1, 1, 1), mk(2, 2, 2), mk(2, 2, 3)});
  ASSERT_EQ(fronts.size(), 2u);
  EXPECT_EQ(fronts[0].size(), 2u);
  EXPECT_EQ(fronts[1].size(), 2u);
}

TEST(LocalFront, EveryLevelMatchesFullSort) {
  Rng rng(4242);
  std::vector<BiPoint> pts;
  for (int i = 0; i < 90; ++i) {
    pts.push_back(mk(static_cast<double>(rng.uniformInt(1, 9)),
                     static_cast<double>(rng.uniformInt(1, 9)),
                     static_cast<std::uint64_t>(i)));
  }
  const auto fronts = nonDominatedSort(pts);
  for (std::size_t k = 1; k <= fronts.size() + 2; ++k) {
    const auto lf = localFront(pts, k);
    if (k > fronts.size()) {
      EXPECT_TRUE(lf.empty()) << "level " << k;
      continue;
    }
    ASSERT_EQ(lf.size(), fronts[k - 1].size()) << "level " << k;
    for (std::size_t i = 0; i < lf.size(); ++i) {
      EXPECT_EQ(lf[i].configId, fronts[k - 1][i].configId);
    }
  }
}

// --- streaming front ---

void expectBitwiseEqual(const std::vector<BiPoint>& got,
                        const std::vector<BiPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, want[i].time) << "index " << i;
    EXPECT_EQ(got[i].energy, want[i].energy) << "index " << i;
    EXPECT_EQ(got[i].configId, want[i].configId) << "index " << i;
  }
}

TEST(StreamingFront, BasicInsertSemantics) {
  StreamingFront f;
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.insert(mk(2, 2, 0)));
  EXPECT_FALSE(f.insert(mk(3, 3, 1)));  // dominated: rejected
  EXPECT_TRUE(f.insert(mk(1, 4, 2)));   // tradeoff: joins
  EXPECT_TRUE(f.insert(mk(1, 1, 3)));   // dominates both: evicts (2,2)
  const auto snap = f.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].configId, 3u);
}

TEST(StreamingFront, KeepsDuplicateObjectivePoints) {
  // paretoFront keeps every copy of a duplicate-objective point; the
  // streaming front must agree bitwise.
  StreamingFront f;
  EXPECT_TRUE(f.insert(mk(1, 1, 0)));
  EXPECT_TRUE(f.insert(mk(1, 1, 1)));
  EXPECT_FALSE(f.insert(mk(2, 2, 2)));
  expectBitwiseEqual(f.snapshot(),
                     paretoFront({mk(1, 1, 0), mk(1, 1, 1), mk(2, 2, 2)}));
}

// Satellite property: 120 random clouds (smooth and coarse-grid, the
// latter forcing single-objective ties and exact duplicates); after
// every prefix the streaming front is bitwise-identical to the batch
// recompute, and insert()'s return value tells whether the point
// joined the front.
TEST(StreamingFrontProperty, MatchesBatchFrontOnRandomClouds) {
  Rng rng(20260809);
  for (int trial = 0; trial < 120; ++trial) {
    const bool coarse = trial % 2 == 1;
    const int n = 1 + static_cast<int>(rng.uniformInt(0, 90));
    std::vector<BiPoint> pts;
    for (int i = 0; i < n; ++i) {
      if (coarse) {
        pts.push_back(mk(static_cast<double>(rng.uniformInt(1, 5)),
                         static_cast<double>(rng.uniformInt(1, 5)),
                         static_cast<std::uint64_t>(i)));
      } else {
        pts.push_back(mk(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                         static_cast<std::uint64_t>(i)));
      }
    }
    StreamingFront streaming;
    std::vector<BiPoint> prefix;
    for (const auto& p : pts) {
      const bool joined = streaming.insert(p);
      prefix.push_back(p);
      const auto batch = paretoFront(prefix);
      const bool inBatch = std::any_of(
          batch.begin(), batch.end(), [&p](const BiPoint& b) {
            return b.configId == p.configId && b.time == p.time &&
                   b.energy == p.energy;
          });
      EXPECT_EQ(joined, inBatch) << "trial " << trial;
      expectBitwiseEqual(streaming.snapshot(), batch);
      // The first level of the full sort is the same front.
      if (prefix.size() == pts.size()) {
        expectBitwiseEqual(streaming.snapshot(),
                           nonDominatedSort(prefix)[0]);
      }
    }
    streaming.clear();
    EXPECT_TRUE(streaming.empty());
  }
}

// --- hypervolume ---

TEST(Hypervolume, SinglePointRectangle) {
  const double hv = hypervolume({mk(1, 1)}, mk(3, 3));
  EXPECT_DOUBLE_EQ(hv, 4.0);
}

TEST(Hypervolume, TwoPointUnion) {
  // (1,2) and (2,1) vs ref (3,3): union = 2*1 + 1*... = computed: 3.
  const double hv = hypervolume({mk(1, 2), mk(2, 1)}, mk(3, 3));
  EXPECT_DOUBLE_EQ(hv, 3.0);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, mk(1, 1)), 0.0);
}

TEST(Hypervolume, RejectsBadReference) {
  EXPECT_THROW((void)hypervolume({mk(2, 2)}, mk(1, 1)), PreconditionError);
}

TEST(Hypervolume, MorePointsNeverDecreaseVolume) {
  const BiPoint ref = mk(10, 10);
  const double hv1 = hypervolume({mk(2, 5)}, ref);
  const double hv2 = hypervolume({mk(2, 5), mk(5, 2)}, ref);
  EXPECT_GE(hv2, hv1);
}

// --- trade-off ---

TEST(Tradeoff, PerfAndEnergyOptimaIdentified) {
  const std::vector<BiPoint> pts{mk(1.0, 10.0, 0), mk(2.0, 4.0, 1),
                                 mk(3.0, 6.0, 2)};
  const auto tr = analyzeTradeoff(pts);
  EXPECT_EQ(tr.performanceOptimal.configId, 0u);
  EXPECT_EQ(tr.energyOptimal.configId, 1u);
  EXPECT_DOUBLE_EQ(tr.maxEnergySavings, 0.6);           // (10-4)/10
  EXPECT_DOUBLE_EQ(tr.performanceDegradation, 1.0);     // (2-1)/1
}

TEST(Tradeoff, SinglePointHasZeroSavings) {
  const auto tr = analyzeTradeoff({mk(1.0, 1.0)});
  EXPECT_DOUBLE_EQ(tr.maxEnergySavings, 0.0);
  EXPECT_DOUBLE_EQ(tr.performanceDegradation, 0.0);
}

TEST(Tradeoff, SavingsUnderBudgetRespectsBudget) {
  const std::vector<BiPoint> pts{mk(1.0, 10.0, 0), mk(1.05, 8.0, 1),
                                 mk(2.0, 2.0, 2)};
  // 10 % budget admits only the first two points.
  const auto tr = savingsUnderBudget(pts, 0.10);
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->energyOptimal.configId, 1u);
  EXPECT_DOUBLE_EQ(tr->maxEnergySavings, 0.2);
  // 200 % budget admits the cheap slow point.
  const auto tr2 = savingsUnderBudget(pts, 2.0);
  ASSERT_TRUE(tr2.has_value());
  EXPECT_EQ(tr2->energyOptimal.configId, 2u);
}

TEST(Tradeoff, SavingsUnderBudgetNulloptWhenNoImprovement) {
  const std::vector<BiPoint> pts{mk(1.0, 1.0, 0), mk(1.05, 2.0, 1)};
  EXPECT_FALSE(savingsUnderBudget(pts, 0.10).has_value());
}

TEST(Tradeoff, ZeroBudgetOnlyAdmitsPerfOptimum) {
  const std::vector<BiPoint> pts{mk(1.0, 5.0, 0), mk(1.5, 1.0, 1)};
  EXPECT_FALSE(savingsUnderBudget(pts, 0.0).has_value());
}

TEST(Knee, MiddleOfSymmetricFrontWins) {
  const std::vector<BiPoint> front{mk(1, 5, 0), mk(2.5, 2.5, 1),
                                   mk(5, 1, 2)};
  EXPECT_EQ(kneePoint(front).configId, 1u);
}

TEST(Knee, SinglePointFront) {
  EXPECT_EQ(kneePoint({mk(1, 1, 7)}).configId, 7u);
}

TEST(Knee, EmptyFrontThrows) {
  EXPECT_THROW((void)kneePoint({}), PreconditionError);
}

// Property: for random clouds, the budgeted recommendation never
// violates the budget and never exceeds the unconstrained max savings.
TEST(TradeoffProperty, BudgetedSavingsBounded) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BiPoint> pts;
    for (int i = 0; i < 30; ++i) {
      pts.push_back(mk(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                       static_cast<std::uint64_t>(i)));
    }
    const double budget = rng.uniform(0.0, 1.0);
    const auto unconstrained = analyzeTradeoff(pts);
    const auto budgeted = savingsUnderBudget(pts, budget);
    if (budgeted) {
      EXPECT_LE(budgeted->performanceDegradation, budget + 1e-12);
      EXPECT_LE(budgeted->maxEnergySavings,
                unconstrained.maxEnergySavings + 1e-12);
      EXPECT_GT(budgeted->maxEnergySavings, 0.0);
    }
  }
}

}  // namespace
}  // namespace ep::pareto

// --- crowding distance & epsilon fronts (appended extensions) ---

namespace ep::pareto {
namespace {

BiPoint mk2(double t, double e, std::uint64_t id = 0) {
  BiPoint p;
  p.time = Seconds{t};
  p.energy = Joules{e};
  p.configId = id;
  return p;
}

TEST(Crowding, BoundariesAreInfinite) {
  const std::vector<BiPoint> front{mk2(1, 5), mk2(2, 3), mk2(3, 1)};
  const auto d = crowdingDistance(front);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[2]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_GT(d[1], 0.0);
}

TEST(Crowding, DenseMiddlePointHasSmallerDistance) {
  // t = 2.05 has near neighbours on BOTH sides: it is the crowded one.
  const std::vector<BiPoint> front{mk2(1, 10), mk2(2, 6), mk2(2.05, 5.9),
                                   mk2(2.1, 5.8), mk2(5, 1)};
  const auto d = crowdingDistance(front);
  EXPECT_LT(d[2], d[1]);
  EXPECT_LT(d[2], d[3]);
}

TEST(Crowding, TinyFrontsAllInfinite) {
  const auto d = crowdingDistance({mk2(1, 2), mk2(2, 1)});
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[1]));
}

TEST(EpsilonFront, CollapsesNearDuplicates) {
  const std::vector<BiPoint> pts{mk2(1.0, 5.0, 0), mk2(1.001, 4.999, 1),
                                 mk2(2.0, 1.0, 2)};
  const auto thin = epsilonFront(pts, 0.01);
  EXPECT_EQ(thin.size(), 2u);
  const auto full = epsilonFront(pts, 0.0);
  EXPECT_EQ(full.size(), 3u);
}

TEST(EpsilonFront, SubsetOfTrueFront) {
  Rng rng(123);
  std::vector<BiPoint> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back(mk2(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                      static_cast<std::uint64_t>(i)));
  }
  const auto full = paretoFront(pts);
  const auto thin = epsilonFront(pts, 0.05);
  EXPECT_LE(thin.size(), full.size());
  EXPECT_TRUE(isValidFront(thin, {}));
}

TEST(EpsilonFront, RejectsNegativeEpsilon) {
  EXPECT_THROW((void)epsilonFront({mk2(1, 1)}, -0.1), PreconditionError);
}

// --- precision-aware front ---

TEST(PrecisionFront, ZeroEpsilonIsTheExactFront) {
  const std::vector<BiPoint> pts{mk(1, 4, 0), mk(3, 3, 1), mk(2, 2, 2),
                                 mk(5, 1, 3)};
  const auto exact = paretoFront(pts);
  const auto precise = precisionFront(pts, 0.0);
  ASSERT_EQ(precise.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(precise[i].configId, exact[i].configId);
  }
}

TEST(PrecisionFront, DropsAdvantagesBelowMeasurementPrecision) {
  // The K40c near-tie shape: the second point is 8 % slower for a 0.4 %
  // energy win — real to exact dominance, meaningless to an instrument
  // with a 2.5 % CI.  The front collapses to the fast point.
  const std::vector<BiPoint> pts{mk(87.57, 5524.2, 0), mk(94.61, 5500.4, 1),
                                 mk(95.0, 6000.0, 2)};
  const auto exact = paretoFront(pts);
  ASSERT_EQ(exact.size(), 2u);
  const auto precise = precisionFront(pts, 0.025);
  ASSERT_EQ(precise.size(), 1u);
  EXPECT_EQ(precise[0].configId, 0u);
}

TEST(PrecisionFront, KeepsTradeoffsBeyondPrecision) {
  // 10 % slower for 30 % less energy: both objectives move beyond
  // epsilon in opposite directions, so both points are meaningful.
  const std::vector<BiPoint> pts{mk(1.0, 10.0, 0), mk(1.1, 7.0, 1)};
  EXPECT_EQ(precisionFront(pts, 0.025).size(), 2u);
  // A large-enough epsilon erases the time advantage and keeps only the
  // energy-better point.
  const auto coarse = precisionFront(pts, 0.15);
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_EQ(coarse[0].configId, 1u);
}

TEST(PrecisionFront, IsASubsetOfTheExactFront) {
  Rng rng(2027);
  std::vector<BiPoint> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(mk(rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                     static_cast<std::uint64_t>(i)));
  }
  const auto exact = paretoFront(pts);
  for (double eps : {0.0, 0.01, 0.05, 0.25}) {
    const auto precise = precisionFront(pts, eps);
    EXPECT_LE(precise.size(), exact.size());
    for (const auto& p : precise) {
      EXPECT_TRUE(std::any_of(exact.begin(), exact.end(), [&](const BiPoint& q) {
        return q.configId == p.configId;
      }));
    }
  }
}

TEST(PrecisionFront, RejectsNegativeEpsilon) {
  EXPECT_THROW((void)precisionFront({mk(1, 1)}, -0.01), PreconditionError);
}

}  // namespace
}  // namespace ep::pareto
