// epnet tests: LEB128 varints, the EPB1/line-JSON FrameDecoder state
// machine, and the epoll event-loop Server over real loopback sockets —
// pipelined response ordering, slow-reader eviction, protocol-error
// reply-then-close, and the Broker + NetService stack end to end in
// both wire modes.
//
// Each Server owns a private metrics registry unless ServerOptions
// points it elsewhere, so the ep_net_* counters here start at zero per
// test and the socket tests assert absolute values.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/server.hpp"
#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/tsdb.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "serve/wire_binary.hpp"

namespace ep::net {
namespace {

// --- varints ---

TEST(Varint, RoundTripsRepresentativeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  std::uint64_t{1} << 20,
                                  std::uint64_t{0xFFFFFFFF},
                                  std::uint64_t{1} << 62,
                                  ~std::uint64_t{0}};
  for (const std::uint64_t v : values) {
    std::string buf;
    putVarint(buf, v);
    std::uint64_t out = 0;
    const int used = readVarint(buf.data(), buf.size(), &out);
    EXPECT_EQ(used, static_cast<int>(buf.size())) << "value " << v;
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, NeedsMoreInputOnPartialEncoding) {
  std::string buf;
  putVarint(buf, 300);  // two bytes
  std::uint64_t out = 0;
  EXPECT_EQ(readVarint(buf.data(), 1, &out), 0);
  EXPECT_EQ(readVarint(buf.data(), 0, &out), 0);
  EXPECT_EQ(readVarint(buf.data(), 2, &out), 2);
  EXPECT_EQ(out, 300u);
}

TEST(Varint, RejectsOverlongAndOverflowingEncodings) {
  std::uint64_t out = 0;
  // Ten continuation bytes: no uint64 needs more.
  const std::string overlong(10, '\x80');
  EXPECT_EQ(readVarint(overlong.data(), overlong.size(), &out), -1);
  // Tenth byte carrying more than the one remaining bit overflows.
  std::string overflow(9, '\xFF');
  overflow += '\x7F';
  EXPECT_EQ(readVarint(overflow.data(), overflow.size(), &out), -1);
}

// --- FrameDecoder ---

TEST(FrameDecoder, SniffsJsonAndSplitsLines) {
  FrameDecoder dec(1 << 20);
  std::vector<Frame> frames;
  EXPECT_TRUE(dec.feed("{\"a\":1}\n{\"b\":2}\r\n", &frames));
  EXPECT_EQ(dec.mode(), FrameDecoder::Mode::Json);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_FALSE(frames[0].binary);
  EXPECT_EQ(frames[0].opcode, kOpJson);
  EXPECT_EQ(frames[0].payload, "{\"a\":1}");
  EXPECT_EQ(frames[1].payload, "{\"b\":2}");
}

TEST(FrameDecoder, SkipsLeadingWhitespaceWhileSniffing) {
  FrameDecoder dec(1 << 20);
  std::vector<Frame> frames;
  EXPECT_TRUE(dec.feed("  \r\n\t", &frames));
  EXPECT_EQ(dec.mode(), FrameDecoder::Mode::Sniffing);
  EXPECT_TRUE(dec.feed("{\"a\":1}\n", &frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "{\"a\":1}");
}

TEST(FrameDecoder, SniffsMagicAndDecodesBinaryFramesIncrementally) {
  FrameDecoder dec(1 << 20);
  std::vector<Frame> frames;
  std::string wire(kMagic, sizeof kMagic);
  appendFrame(wire, kOpTune, "tune-bytes");
  appendFrame(wire, kOpJson, "{\"op\":\"metrics\"}");
  // Dribble one byte at a time: every prefix must be accepted quietly.
  for (char c : wire) {
    EXPECT_TRUE(dec.feed(std::string_view(&c, 1), &frames));
  }
  EXPECT_EQ(dec.mode(), FrameDecoder::Mode::Binary);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].binary);
  EXPECT_EQ(frames[0].opcode, kOpTune);
  EXPECT_EQ(frames[0].payload, "tune-bytes");
  EXPECT_EQ(frames[1].opcode, kOpJson);
  EXPECT_EQ(frames[1].payload, "{\"op\":\"metrics\"}");
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoder, BadMagicAndUnknownFirstByteAreFatal) {
  {
    FrameDecoder dec(1 << 20);
    std::vector<Frame> frames;
    EXPECT_FALSE(dec.feed("EPB2....", &frames));
    EXPECT_EQ(dec.mode(), FrameDecoder::Mode::Broken);
    EXPECT_EQ(dec.error(), "bad negotiation magic");
  }
  {
    FrameDecoder dec(1 << 20);
    std::vector<Frame> frames;
    EXPECT_FALSE(dec.feed("\x02hello", &frames));
    EXPECT_EQ(dec.error(),
              "unrecognized protocol (expected '{' or EPB1 magic)");
  }
}

TEST(FrameDecoder, EmptyFrameAndUnknownOpcodeAreFatal) {
  {
    FrameDecoder dec(1 << 20);
    std::vector<Frame> frames;
    std::string wire(kMagic, sizeof kMagic);
    putVarint(wire, 0);
    EXPECT_FALSE(dec.feed(wire, &frames));
    EXPECT_EQ(dec.error(), "empty frame");
  }
  {
    FrameDecoder dec(1 << 20);
    std::vector<Frame> frames;
    std::string wire(kMagic, sizeof kMagic);
    appendFrame(wire, 0x7F, "body");
    EXPECT_FALSE(dec.feed(wire, &frames));
    EXPECT_EQ(dec.error(), "unknown frame opcode");
  }
}

TEST(FrameDecoder, OversizeJsonLineIsFatalEvenWithoutNewline) {
  FrameDecoder dec(64);
  std::vector<Frame> frames;
  const std::string longLine = "{" + std::string(128, 'x');
  EXPECT_FALSE(dec.feed(longLine, &frames));
  EXPECT_EQ(dec.error(), "frame too large");
}

// --- loopback socket helpers ---

int connectTo(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{};
  tv.tv_sec = 10;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

void sendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

// Reads until `buf` holds a full '\n'-terminated line; returns it
// without the newline.  Empty string on EOF/timeout.
std::string recvLine(int fd, std::string* buf) {
  for (;;) {
    const std::size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      std::string line = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) return {};
    buf->append(chunk, static_cast<std::size_t>(got));
  }
}

// Reads one EPB1 frame; returns true with *opcode/*payload set.
bool recvFrame(int fd, std::string* buf, std::uint8_t* opcode,
               std::string* payload) {
  for (;;) {
    std::uint64_t len = 0;
    const int used = readVarint(buf->data(), buf->size(), &len);
    if (used < 0 || (used > 0 && len == 0)) return false;
    if (used > 0 && buf->size() >= static_cast<std::size_t>(used) + len) {
      *opcode = static_cast<std::uint8_t>((*buf)[static_cast<std::size_t>(used)]);
      payload->assign(*buf, static_cast<std::size_t>(used) + 1,
                      static_cast<std::size_t>(len) - 1);
      buf->erase(0, static_cast<std::size_t>(used) +
                        static_cast<std::size_t>(len));
      return true;
    }
    char chunk[4096];
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) return false;
    buf->append(chunk, static_cast<std::size_t>(got));
  }
}

bool waitFor(const std::function<bool()>& cond, int timeoutMs = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// --- Server over loopback ---

TEST(Server, RestoresPipelinedResponseOrder) {
  // The handler answers each trio of requests in REVERSE arrival
  // order; the client must still read responses in request order.
  struct State {
    std::mutex mu;
    std::vector<InboundFrame> pending;
  };
  auto state = std::make_shared<State>();
  ServerOptions opts;
  Server server(opts, [state](Server& s, std::vector<InboundFrame>&& batch) {
    std::lock_guard lk(state->mu);
    for (auto& f : batch) state->pending.push_back(std::move(f));
    if (state->pending.size() < 3) return;
    for (auto it = state->pending.rbegin(); it != state->pending.rend();
         ++it) {
      s.respond(it->conn, it->seq,
                makeBuffer("{\"r\":" + std::to_string(it->seq) + "}\n"));
    }
    state->pending.clear();
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connectTo(server.port());
  sendAll(fd, "{\"a\":0}\n{\"a\":1}\n{\"a\":2}\n");
  std::string buf;
  EXPECT_EQ(recvLine(fd, &buf), "{\"r\":0}");
  EXPECT_EQ(recvLine(fd, &buf), "{\"r\":1}");
  EXPECT_EQ(recvLine(fd, &buf), "{\"r\":2}");
  close(fd);
  server.stop();
}

TEST(Server, EvictsSlowReadersPastTheHighWaterMark) {
  // Every request earns a 256 KiB response against a 64 KiB write
  // ceiling; a client that never reads must be evicted, not buffered.
  ServerOptions opts;
  opts.writeHighWaterBytes = std::size_t{64} << 10;
  const auto big = makeBuffer(std::string((std::size_t{256} << 10), 'x'));
  Server server(opts, [big](Server& s, std::vector<InboundFrame>&& batch) {
    for (const auto& f : batch) s.respond(f.conn, f.seq, big);
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connectTo(server.port());
  std::string requests;
  for (int i = 0; i < 64; ++i) requests += "{\"a\":1}\n";
  sendAll(fd, requests);
  EXPECT_TRUE(waitFor([&] { return server.evicted() > 0; }))
      << "slow reader was never evicted";
  close(fd);
  server.stop();
}

TEST(Server, AnswersProtocolErrorsThenCloses) {
  ServerOptions opts;
  Server server(opts, [](Server&, std::vector<InboundFrame>&&) {});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connectTo(server.port());
  sendAll(fd, "garbage\n");
  std::string buf;
  const std::string reply = recvLine(fd, &buf);
  EXPECT_NE(reply.find("\"status\":\"bad_request\""), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("unrecognized protocol"), std::string::npos);
  // After the error reply the server closes its end.
  char c;
  EXPECT_EQ(recv(fd, &c, 1, 0), 0);
  EXPECT_EQ(server.protocolErrors(), 1u);
  close(fd);
  server.stop();
}

TEST(Server, SurvivesMidFrameCloseAndKeepsServing) {
  ServerOptions opts;
  Server server(opts, [](Server& s, std::vector<InboundFrame>&& batch) {
    for (const auto& f : batch) {
      s.respond(f.conn, f.seq, makeBuffer("{\"ok\":true}\n"));
    }
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // A binary connection that declares a 100-byte frame, sends 10 bytes,
  // and vanishes: the partial frame is dropped with the connection.
  const int fd = connectTo(server.port());
  std::string wire(kMagic, sizeof kMagic);
  putVarint(wire, 100);
  wire += std::string(10, 'z');
  sendAll(fd, wire);
  EXPECT_TRUE(waitFor([&] { return server.openConnections() == 1; }));
  close(fd);
  EXPECT_TRUE(waitFor([&] { return server.openConnections() == 0; }));

  // The loop is still healthy: a fresh connection gets served.
  const int fd2 = connectTo(server.port());
  sendAll(fd2, "{\"a\":1}\n");
  std::string buf;
  EXPECT_EQ(recvLine(fd2, &buf), "{\"ok\":true}");
  close(fd2);
  server.stop();
}

TEST(Server, PrivateRegistryScopesCountersPerServer) {
  const auto echo = [](Server& s, std::vector<InboundFrame>&& batch) {
    for (const auto& f : batch) {
      s.respond(f.conn, f.seq, makeBuffer("{\"ok\":true}\n"));
    }
  };
  Server a{ServerOptions{}, echo};
  Server b{ServerOptions{}, echo};
  std::string error;
  ASSERT_TRUE(a.start(&error)) << error;
  ASSERT_TRUE(b.start(&error)) << error;

  const int fd = connectTo(a.port());
  sendAll(fd, "{\"a\":1}\n");
  std::string buf;
  EXPECT_EQ(recvLine(fd, &buf), "{\"ok\":true}");
  close(fd);

  // The served frame lands only in a's private registry; b's ep_net_*
  // family, same names, stays at zero.
  const std::string aProm = a.registry().renderPrometheus();
  EXPECT_NE(aProm.find("ep_net_frames_total 1"), std::string::npos) << aProm;
  EXPECT_NE(aProm.find("ep_net_connections_total 1"), std::string::npos);
  const std::string bProm = b.registry().renderPrometheus();
  EXPECT_NE(bProm.find("ep_net_frames_total 0"), std::string::npos) << bProm;
  EXPECT_NE(bProm.find("ep_net_connections_total 0"), std::string::npos);
  a.stop();
  b.stop();
}

// --- Broker + NetService end to end ---

class NetServiceEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_shared<serve::EpStudyEngine>();
    serve::BrokerOptions bopts;
    bopts.threads = 2;
    bopts.queueCapacity = 256;
    broker_ = std::make_unique<serve::Broker>(engine_, bopts);

    serve::NetServiceHooks hooks;
    hooks.tuneBatch =
        [this](std::vector<serve::ServiceTuneItem>&& items) {
          std::vector<serve::Broker::TuneBatchItem> batch;
          for (auto& item : items) {
            if (item.deviceAuto) {
              serve::TuneResponse resp;
              resp.status = serve::Status::Error;
              resp.error = "\"auto\" device needs a fleet server";
              item.done(std::move(resp));
              continue;
            }
            serve::Broker::TuneBatchItem member;
            member.req = item.req;
            member.ctx = item.ctx;
            member.done = std::move(item.done);
            batch.push_back(std::move(member));
          }
          broker_->submitTuneBatch(std::move(batch));
        };
    hooks.study = [this](const serve::StudyRequest& r) {
      return broker_->study(r);
    };
    // The control plane mirrors epserved's op switch so reachability
    // of the observability ops over both framings stays regression-
    // tested here: tsdb reads a fixture-ingested store, slo a no-burn
    // engine, profile the process profiler's status.
    tsdbRegistry_.counter("tun_total", "Tunneled scrapes").inc(5);
    tsdb_.ingest(tsdbRegistry_.snapshot(), 9 * 1000000000LL);
    tsdbRegistry_.counter("tun_total", "Tunneled scrapes").inc(5);
    tsdb_.ingest(tsdbRegistry_.snapshot(), 10 * 1000000000LL);
    std::string sloError;
    const auto spec = ep::obs::parseSloSpec("api=latency:0.5:0.99", &sloError);
    ASSERT_TRUE(spec.has_value()) << sloError;
    slo_ = std::make_unique<ep::obs::SloEngine>(
        &tsdb_, std::vector<ep::obs::SloSpec>{*spec});
    slo_->evaluate(10 * 1000000000LL);
    hooks.control = [this](const serve::wire::WireRequest& req) {
      using Op = serve::wire::WireRequest::Op;
      switch (req.op) {
        case Op::Events: {
          std::string body;
          for (const ep::obs::FlightEvent& e : slo_->events(req.eventsSince)) {
            body += ep::obs::encodeFlightEventLine(e);
            body += '\n';
          }
          return serve::wire::encodeEvents(slo_->activeAlerts(),
                                           slo_->recorder().recorded(),
                                           slo_->recorder().dropped(), body);
        }
        case Op::Tsdb:
          return serve::wire::encodeTsdbResponse(tsdb_, req,
                                                 10 * 1000000000LL);
        case Op::Slo:
          return serve::wire::encodeSloStatus(slo_->status());
        case Op::Profile:
          return serve::wire::encodeProfileStatus(
              ep::obs::Profiler::global().running(),
              ep::obs::Profiler::global().registeredThreads(), "status");
        default:
          return serve::wire::encodeMetrics(broker_->metrics());
      }
    };
    service_ = std::make_unique<serve::NetService>(std::move(hooks));
    server_ = std::make_unique<Server>(ServerOptions{}, service_->handler());
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override {
    server_->stop();
    service_->stop();
    broker_->shutdown();
  }

  std::shared_ptr<serve::EpStudyEngine> engine_;
  std::unique_ptr<serve::Broker> broker_;
  std::unique_ptr<serve::NetService> service_;
  std::unique_ptr<Server> server_;
  ep::obs::Registry tsdbRegistry_;
  ep::obs::TimeSeriesStore tsdb_;
  std::unique_ptr<ep::obs::SloEngine> slo_;
};

TEST_F(NetServiceEndToEnd, ServesJsonTunesAndControlOps) {
  const int fd = connectTo(server_->port());
  sendAll(fd,
          "{\"op\":\"tune\",\"device\":\"p100\",\"n\":1024,"
          "\"maxDegradation\":0.11}\n");
  std::string buf;
  std::string reply = recvLine(fd, &buf);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"recommended\""), std::string::npos);

  sendAll(fd, "{\"op\":\"metrics\"}\n");
  reply = recvLine(fd, &buf);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;

  // device:auto is a fleet-only feature here — inline error, same conn.
  sendAll(fd, "{\"op\":\"tune\",\"device\":\"auto\",\"n\":1024}\n");
  reply = recvLine(fd, &buf);
  EXPECT_NE(reply.find("\"status\":\"error\""), std::string::npos) << reply;
  close(fd);
}

TEST_F(NetServiceEndToEnd, ServesBinaryTunesAndTunneledJson) {
  const int fd = connectTo(server_->port());
  std::string wire(kMagic, sizeof kMagic);
  serve::wire_binary::BinaryTuneRequest breq;
  breq.tune.n = 2048;
  breq.tune.maxDegradation = 0.11;
  breq.traceId = "deadbeef";
  appendFrame(wire, kOpTune, serve::wire_binary::encodeTuneRequest(breq));
  appendFrame(wire, kOpJson, "{\"op\":\"metrics\"}");
  sendAll(fd, wire);

  std::string buf;
  std::uint8_t opcode = 0;
  std::string payload;
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpTune);
  std::string derr;
  const auto resp = serve::wire_binary::decodeTuneResponse(payload, &derr);
  ASSERT_TRUE(resp.has_value()) << derr;
  EXPECT_EQ(resp->status, serve::Status::Ok);
  EXPECT_EQ(resp->traceId, "deadbeef");
  EXPECT_FALSE(resp->recommended.empty());

  // Tunneled JSON comes back as a kOpJson frame, not a bare line.
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpJson);
  EXPECT_NE(payload.find("\"status\":\"ok\""), std::string::npos) << payload;
  close(fd);
}

// Regression for the observability control plane over EPB1: every op
// the line-JSON frontend answers must also be reachable through
// kOpJson tunneling on a binary connection, in pipelined order.
TEST_F(NetServiceEndToEnd, ObservabilityOpsTunnelOverBinaryFraming) {
  const int fd = connectTo(server_->port());
  std::string wire(kMagic, sizeof kMagic);
  appendFrame(wire, kOpJson, "{\"op\":\"events\",\"since\":0}");
  appendFrame(wire, kOpJson,
              "{\"op\":\"tsdb\",\"series\":\"tun_total\",\"agg\":\"all\","
              "\"windowMs\":60000}");
  appendFrame(wire, kOpJson, "{\"op\":\"slo\"}");
  appendFrame(wire, kOpJson, "{\"op\":\"profile\"}");
  sendAll(fd, wire);

  std::string buf;
  std::uint8_t opcode = 0;
  std::string payload;
  std::string perr;

  // events: totals present, no alerts from the quiet SLO engine.
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpJson);
  auto obj = serve::wire::parseObject(payload, &perr);
  ASSERT_TRUE(obj.has_value()) << payload << ": " << perr;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("alerts").number, 0.0);
  ASSERT_NE(obj->find("recorded"), obj->end());
  ASSERT_NE(obj->find("body"), obj->end());

  // tsdb: the fixture ingested two scrapes of tun_total (5 then 10).
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpJson);
  obj = serve::wire::parseObject(payload, &perr);
  ASSERT_TRUE(obj.has_value()) << payload << ": " << perr;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("series").string, "tun_total");
  EXPECT_EQ(obj->at("samples").number, 2.0);
  EXPECT_EQ(obj->at("min").number, 5.0);
  EXPECT_EQ(obj->at("max").number, 10.0);

  // slo: one declared SLO, not burning without error history.
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpJson);
  obj = serve::wire::parseObject(payload, &perr);
  ASSERT_TRUE(obj.has_value()) << payload << ": " << perr;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("slos").number, 1.0);
  EXPECT_EQ(obj->at("burning").number, 0.0);
  EXPECT_FALSE(obj->at("slo.api.burning").boolean);

  // profile: the status op answers even with the profiler disarmed.
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpJson);
  obj = serve::wire::parseObject(payload, &perr);
  ASSERT_TRUE(obj.has_value()) << payload << ": " << perr;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("action").string, "status");
  ASSERT_NE(obj->find("running"), obj->end());
  close(fd);
}

TEST_F(NetServiceEndToEnd, MalformedBinaryTuneGetsABinaryError) {
  const int fd = connectTo(server_->port());
  std::string wire(kMagic, sizeof kMagic);
  appendFrame(wire, kOpTune, "\x01");  // truncated codec payload
  sendAll(fd, wire);
  std::string buf;
  std::uint8_t opcode = 0;
  std::string payload;
  ASSERT_TRUE(recvFrame(fd, &buf, &opcode, &payload));
  EXPECT_EQ(opcode, kOpTune);
  std::string derr;
  const auto resp = serve::wire_binary::decodeTuneResponse(payload, &derr);
  ASSERT_TRUE(resp.has_value()) << derr;
  EXPECT_EQ(resp->status, serve::Status::Error);
  EXPECT_NE(resp->error.find("truncated"), std::string::npos);
  close(fd);
}

}  // namespace
}  // namespace ep::net
