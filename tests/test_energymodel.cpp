// Unit tests for epmodel: the additivity property and linear energy
// predictive models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cudasim/cupti.hpp"
#include "energymodel/additivity.hpp"
#include "energymodel/linear_model.hpp"

namespace ep::model {
namespace {

// --- additivityError ---

TEST(Additivity, PerfectlyAdditiveIsZeroError) {
  EXPECT_DOUBLE_EQ(additivityError(10.0, 20.0, 30.0), 0.0);
}

TEST(Additivity, RelativeErrorComputed) {
  EXPECT_DOUBLE_EQ(additivityError(10.0, 10.0, 25.0), 0.25);
  EXPECT_DOUBLE_EQ(additivityError(10.0, 10.0, 15.0), 0.25);
}

TEST(Additivity, ZeroBasesThrow) {
  EXPECT_THROW((void)additivityError(0.0, 0.0, 1.0), PreconditionError);
}

// --- counter additivity ---

TEST(CounterAdditivity, AdditiveCountersHaveZeroError) {
  cusim::CuptiCounters b1, b2, comp;
  b1.add(cusim::CuptiEvent::kFlopCountDp, 1000);
  b2.add(cusim::CuptiEvent::kFlopCountDp, 2000);
  comp.add(cusim::CuptiEvent::kFlopCountDp, 3000);
  const auto records = analyzeCounterAdditivity(b1, b2, comp);
  for (const auto& r : records) {
    if (r.event == "flop_count_dp") EXPECT_DOUBLE_EQ(r.error, 0.0);
  }
}

TEST(CounterAdditivity, OverflowMakesCountersNonAdditive) {
  // The paper's CUPTI failure mode: 32-bit wrap breaks additivity even
  // though the silicon's true counts are perfectly additive.
  cusim::CuptiCounters b1, b2, comp;
  const std::uint64_t big = 3ULL << 31;  // 3 * 2^31 > 2^32
  b1.add(cusim::CuptiEvent::kFlopCountDp, big);
  b2.add(cusim::CuptiEvent::kFlopCountDp, big);
  comp.add(cusim::CuptiEvent::kFlopCountDp, 2 * big);
  const auto records = analyzeCounterAdditivity(b1, b2, comp);
  bool checked = false;
  for (const auto& r : records) {
    if (r.event == "flop_count_dp") {
      EXPECT_GT(r.error, 0.1);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(CounterAdditivity, SelectAdditiveEventsFiltersByThreshold) {
  std::vector<EventAdditivity> records;
  records.push_back({"good", 1, 1, 2, 0.01});
  records.push_back({"bad", 1, 1, 4, 1.0});
  records.push_back({"ok", 1, 1, 2, 0.05});
  const auto selected = selectAdditiveEvents(records, 0.05);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], "good");
  EXPECT_EQ(selected[1], "ok");
}

// --- energy additivity (Fig 6 machinery) ---

TEST(EnergyAdditivity, ScaledEnergyComputed) {
  const auto r = analyzeEnergyAdditivity(100.0, 180.0, 2);
  EXPECT_DOUBLE_EQ(r.additiveEnergy, 200.0);
  EXPECT_DOUBLE_EQ(r.error, 0.1);
}

TEST(EnergyAdditivity, PerfectScalingIsZeroError) {
  const auto r = analyzeEnergyAdditivity(50.0, 200.0, 4);
  EXPECT_DOUBLE_EQ(r.error, 0.0);
}

TEST(EnergyAdditivity, RejectsBadInput) {
  EXPECT_THROW((void)analyzeEnergyAdditivity(0.0, 1.0, 2),
               PreconditionError);
  EXPECT_THROW((void)analyzeEnergyAdditivity(1.0, 1.0, 0),
               PreconditionError);
}

// --- linear energy predictive models ---

TEST(EnergyModel, RecoversExactLinearModel) {
  EnergyPredictiveModel model({"flops", "bytes"});
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const double flops = rng.uniform(1e9, 1e10);
    const double bytes = rng.uniform(1e8, 1e9);
    model.addObservation({{flops, bytes}, 2e-9 * flops + 5e-9 * bytes});
  }
  const auto report = model.fit();
  ASSERT_EQ(report.coefficients.size(), 2u);
  EXPECT_NEAR(report.coefficients[0], 2e-9, 1e-12);
  EXPECT_NEAR(report.coefficients[1], 5e-9, 1e-12);
  EXPECT_NEAR(report.r2, 1.0, 1e-9);
  EXPECT_TRUE(report.dropped.empty());
}

TEST(EnergyModel, DropsNegativeCoefficientVariables) {
  // One variable anti-correlated with energy: a physical energy model
  // must not assign it a negative coefficient.
  Rng rng(2);
  EnergyPredictiveModel model2({"flops", "noise"});
  for (int i = 0; i < 40; ++i) {
    const double flops = rng.uniform(1e9, 1e10);
    const double noise = rng.uniform(0.0, 1e9);
    model2.addObservation(
        {{flops, noise}, 3e-9 * flops - 1e-10 * noise});
  }
  const auto report = model2.fit();
  EXPECT_EQ(report.dropped.size(), 1u);
  EXPECT_EQ(report.dropped[0], "noise");
  ASSERT_EQ(report.variables.size(), 1u);
  EXPECT_EQ(report.variables[0], "flops");
  EXPECT_GT(report.coefficients[0], 0.0);
}

TEST(EnergyModel, PredictsNewObservations) {
  EnergyPredictiveModel model({"x"});
  for (int i = 1; i <= 10; ++i) {
    model.addObservation(
        {{static_cast<double>(i)}, 4.0 * static_cast<double>(i)});
  }
  const auto report = model.fit();
  EXPECT_NEAR(EnergyPredictiveModel::predict(report, {100.0}), 400.0, 1e-6);
}

TEST(EnergyModel, CorrelationsReported) {
  EnergyPredictiveModel model({"x"});
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const double x = rng.uniform(1.0, 10.0);
    model.addObservation({{x}, 2.0 * x});
  }
  const auto report = model.fit();
  ASSERT_EQ(report.correlations.size(), 1u);
  EXPECT_NEAR(report.correlations[0], 1.0, 1e-9);
}

TEST(EnergyModel, RequiresMoreObservationsThanVariables) {
  EnergyPredictiveModel model({"a", "b", "c"});
  model.addObservation({{1.0, 2.0, 3.0}, 1.0});
  model.addObservation({{2.0, 1.0, 5.0}, 2.0});
  EXPECT_THROW((void)model.fit(), PreconditionError);
}

TEST(EnergyModel, RejectsRaggedObservations) {
  EnergyPredictiveModel model({"a", "b"});
  EXPECT_THROW(model.addObservation({{1.0}, 1.0}), PreconditionError);
}

TEST(EnergyModel, RejectsNegativeEnergy) {
  EnergyPredictiveModel model({"a"});
  EXPECT_THROW(model.addObservation({{1.0}, -1.0}), PreconditionError);
}

}  // namespace
}  // namespace ep::model
