// Unit and property tests for epblas: naive, blocked and threadgroup
// DGEMM (the Fig 3 decomposition).
#include <gtest/gtest.h>

#include <vector>

#include "blas/dgemm.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace ep::blas {
namespace {

std::vector<double> randomMatrix(std::size_t n, Rng& rng) {
  std::vector<double> m(n * n);
  for (auto& x : m) x = rng.uniform(-1.0, 1.0);
  return m;
}

void expectNear(const std::vector<double>& a, const std::vector<double>& b,
                double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

TEST(DgemmNaive, IdentityTimesMatrixIsMatrix) {
  const std::size_t n = 8;
  Rng rng(1);
  const auto b = randomMatrix(n, rng);
  std::vector<double> identity(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) identity[i * n + i] = 1.0;
  std::vector<double> c(n * n, 0.0);
  dgemmNaive(n, 1.0, identity, b, 0.0, c);
  expectNear(c, b);
}

TEST(DgemmNaive, KnownTwoByTwo) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50].
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 6, 7, 8};
  std::vector<double> c(4, 0.0);
  dgemmNaive(2, 1.0, a, b, 0.0, c);
  expectNear(c, {19, 22, 43, 50});
}

TEST(DgemmNaive, AlphaBetaSemantics) {
  const std::vector<double> a{1, 0, 0, 1};
  const std::vector<double> b{1, 2, 3, 4};
  std::vector<double> c{10, 10, 10, 10};
  // C = 2 * A * B + 3 * C.
  dgemmNaive(2, 2.0, a, b, 3.0, c);
  expectNear(c, {32, 34, 36, 38});
}

TEST(DgemmNaive, RejectsWrongShapes) {
  std::vector<double> a(4), b(4), c(9);
  EXPECT_THROW(dgemmNaive(2, 1.0, a, b, 0.0, c), PreconditionError);
}

TEST(DgemmBlocked, MatchesNaiveAcrossBlockSizes) {
  const std::size_t n = 17;  // prime: exercises remainder tiles
  Rng rng(2);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  std::vector<double> expected(n * n, 0.0);
  dgemmNaive(n, 1.0, a, b, 0.0, expected);
  for (std::size_t bs : {1u, 2u, 3u, 5u, 8u, 16u, 17u, 64u}) {
    std::vector<double> c(n * n, 0.0);
    dgemmBlocked(n, 1.0, a, b, 0.0, c, bs);
    expectNear(c, expected);
  }
}

TEST(DgemmBlocked, BetaScalingWithBlockedPath) {
  const std::size_t n = 6;
  Rng rng(3);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  auto c1 = randomMatrix(n, rng);
  auto c2 = c1;
  dgemmNaive(n, 1.5, a, b, 0.5, c1);
  dgemmBlocked(n, 1.5, a, b, 0.5, c2, 4);
  expectNear(c1, c2);
}

TEST(ThreadgroupDgemm, RowDistributionIsBalancedAndComplete) {
  ThreadgroupConfig cfg;
  cfg.threadgroups = 3;
  cfg.threadsPerGroup = 4;
  const ThreadgroupDgemm dgemm(cfg);
  const std::size_t n = 29;  // not divisible by 12
  std::vector<bool> covered(n, false);
  std::size_t minRows = n, maxRows = 0;
  for (std::size_t t = 0; t < 12; ++t) {
    const auto [lo, hi] = dgemm.rowsForThread(n, t);
    for (std::size_t r = lo; r < hi; ++r) {
      EXPECT_FALSE(covered[r]) << "row " << r << " assigned twice";
      covered[r] = true;
    }
    minRows = std::min(minRows, hi - lo);
    maxRows = std::max(maxRows, hi - lo);
  }
  for (std::size_t r = 0; r < n; ++r) EXPECT_TRUE(covered[r]);
  // Load balance: the paper's weak-EP application requirement.
  EXPECT_LE(maxRows - minRows, 1u);
}

TEST(ThreadgroupDgemm, MatchesNaiveForVariousShapes) {
  const std::size_t n = 24;
  Rng rng(4);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  std::vector<double> expected(n * n, 0.0);
  dgemmNaive(n, 1.0, a, b, 0.0, expected);
  for (const auto& [p, t] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 4}, {2, 2}, {4, 3}, {6, 4}, {24, 1}}) {
    ThreadgroupConfig cfg;
    cfg.threadgroups = p;
    cfg.threadsPerGroup = t;
    cfg.blockSize = 8;
    std::vector<double> c(n * n, 0.0);
    ThreadgroupDgemm(cfg).run(n, 1.0, a, b, 0.0, c);
    expectNear(c, expected);
  }
}

TEST(ThreadgroupDgemm, MoreThreadsThanRows) {
  const std::size_t n = 3;
  Rng rng(5);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  std::vector<double> expected(n * n, 0.0);
  dgemmNaive(n, 1.0, a, b, 0.0, expected);
  ThreadgroupConfig cfg;
  cfg.threadgroups = 4;
  cfg.threadsPerGroup = 2;  // 8 threads, 3 rows
  std::vector<double> c(n * n, 0.0);
  ThreadgroupDgemm(cfg).run(n, 1.0, a, b, 0.0, c);
  expectNear(c, expected);
}

TEST(ThreadgroupDgemm, AlphaBetaAcrossThreads) {
  const std::size_t n = 16;
  Rng rng(6);
  const auto a = randomMatrix(n, rng);
  const auto b = randomMatrix(n, rng);
  auto c1 = randomMatrix(n, rng);
  auto c2 = c1;
  dgemmNaive(n, -0.5, a, b, 2.0, c1);
  ThreadgroupConfig cfg;
  cfg.threadgroups = 2;
  cfg.threadsPerGroup = 3;
  ThreadgroupDgemm(cfg).run(n, -0.5, a, b, 2.0, c2);
  expectNear(c1, c2);
}

TEST(ThreadgroupDgemm, RejectsInvalidConfigs) {
  ThreadgroupConfig cfg;
  cfg.threadgroups = 0;
  EXPECT_THROW(ThreadgroupDgemm{cfg}, PreconditionError);
  cfg.threadgroups = 1;
  cfg.threadsPerGroup = 0;
  EXPECT_THROW(ThreadgroupDgemm{cfg}, PreconditionError);
  cfg.threadsPerGroup = 1;
  cfg.blockSize = 0;
  EXPECT_THROW(ThreadgroupDgemm{cfg}, PreconditionError);
}

TEST(ThreadgroupDgemm, ThreadIndexOutOfRangeThrows) {
  ThreadgroupConfig cfg;
  cfg.threadgroups = 2;
  cfg.threadsPerGroup = 2;
  const ThreadgroupDgemm dgemm(cfg);
  EXPECT_THROW((void)dgemm.rowsForThread(10, 4), PreconditionError);
}

// Property sweep: decomposition correctness over (p, t, n) combinations.
struct TgParam {
  std::size_t p, t, n;
};

class ThreadgroupSweep : public ::testing::TestWithParam<TgParam> {};

TEST_P(ThreadgroupSweep, MatchesNaive) {
  const auto [p, t, n] = GetParam();
  Rng rng(7 + n);
  std::vector<double> a(n * n), b(n * n);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  std::vector<double> expected(n * n, 0.0);
  dgemmNaive(n, 1.0, a, b, 0.0, expected);
  ThreadgroupConfig cfg;
  cfg.threadgroups = p;
  cfg.threadsPerGroup = t;
  cfg.blockSize = 5;
  std::vector<double> c(n * n, 0.0);
  ThreadgroupDgemm(cfg).run(n, 1.0, a, b, 0.0, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decomposition, ThreadgroupSweep,
    ::testing::Values(TgParam{1, 2, 15}, TgParam{2, 1, 16},
                      TgParam{3, 2, 19}, TgParam{2, 4, 32},
                      TgParam{5, 1, 11}, TgParam{4, 4, 40},
                      TgParam{7, 3, 23}, TgParam{12, 2, 30}));

}  // namespace
}  // namespace ep::blas
