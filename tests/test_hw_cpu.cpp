// Unit tests for ephw's CPU model: Table I spec, the Fig 4 mechanisms
// (utilization accounting, bandwidth roofline, SMT, dTLB term) and the
// Fig 1 CPU FFT response.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "hw/cpu_model.hpp"
#include "hw/spec.hpp"

namespace ep::hw {
namespace {

CpuDgemmConfig cfg(int n, int p, int t,
                   PartitionScheme s = PartitionScheme::Horizontal,
                   BlasVariant v = BlasVariant::IntelMklLike) {
  CpuDgemmConfig c;
  c.n = n;
  c.threadgroups = p;
  c.threadsPerGroup = t;
  c.partition = s;
  c.variant = v;
  return c;
}

TEST(CpuSpec, MatchesTableI) {
  const CpuSpec s = haswellE52670v3();
  EXPECT_EQ(s.coresPerSocket, 12);
  EXPECT_EQ(s.sockets, 2);
  EXPECT_EQ(s.physicalCores(), 24);
  EXPECT_EQ(s.logicalCores(), 48);
  EXPECT_EQ(s.l1dKB, 32);
  EXPECT_EQ(s.l2KB, 256);
  EXPECT_EQ(s.l3KB, 30720);
  EXPECT_EQ(s.memoryGB, 64);
}

TEST(CpuModel, RunnableGating) {
  const CpuModel m(haswellE52670v3());
  EXPECT_TRUE(m.isRunnable(cfg(17408, 1, 24)));
  EXPECT_FALSE(m.isRunnable(cfg(17408, 7, 7)));  // 49 > 48 threads
  EXPECT_FALSE(m.isRunnable(cfg(60000, 1, 24)));  // 86 GB > 64 GB
  EXPECT_THROW((void)m.modelDgemm(cfg(17408, 7, 7)), PreconditionError);
}

TEST(CpuModel, UtilizationVectorHas48Entries) {
  const CpuModel m(haswellE52670v3());
  const auto r = m.modelDgemm(cfg(8192, 2, 6));
  EXPECT_EQ(r.coreUtilization.size(), 48u);
  // 12 threads on scattered physical cores: 12 busy entries.
  const auto busy = std::count_if(r.coreUtilization.begin(),
                                  r.coreUtilization.end(),
                                  [](double u) { return u > 0.0; });
  EXPECT_EQ(busy, 12);
}

TEST(CpuModel, AverageUtilizationScalesWithThreadCount) {
  const CpuModel m(haswellE52670v3());
  const double u6 = m.modelDgemm(cfg(8192, 1, 6)).avgUtilization;
  const double u24 = m.modelDgemm(cfg(8192, 1, 24)).avgUtilization;
  const double u48 = m.modelDgemm(cfg(8192, 2, 24)).avgUtilization;
  EXPECT_LT(u6, u24);
  EXPECT_LT(u24, u48);
  EXPECT_NEAR(u24, 0.5, 0.05);  // 24 of 48 logical cores busy
}

TEST(CpuModel, PerformanceRisesWithThreadsUntilBandwidthPlateau) {
  const CpuModel m(haswellE52670v3());
  const double g1 = m.modelDgemm(cfg(17408, 1, 1)).gflops;
  const double g12 = m.modelDgemm(cfg(17408, 1, 12)).gflops;
  const double g24 = m.modelDgemm(cfg(17408, 1, 24)).gflops;
  const double g48 = m.modelDgemm(cfg(17408, 2, 24)).gflops;
  EXPECT_LT(g1, g12);
  EXPECT_LT(g12, g24);
  // Plateau: going from 24 to 48 threads buys little.
  EXPECT_LT(g48 / g24, 1.15);
  // "The flattening of the performance ... peak memory bandwidth":
  // the plateau sits near the paper's ~700 GFLOPs.
  EXPECT_NEAR(g24, 700.0, 120.0);
}

TEST(CpuModel, TimeMatchesWorkOverThroughput) {
  const CpuModel m(haswellE52670v3());
  const auto r = m.modelDgemm(cfg(8192, 2, 12));
  const double flops = 2.0 * std::pow(8192.0, 3.0);
  EXPECT_NEAR(r.time.value(), flops / (r.gflops * 1e9), 1e-9);
}

TEST(CpuModel, MklLikeOutperformsOpenBlasLike) {
  const CpuModel m(haswellE52670v3());
  const double mkl =
      m.modelDgemm(cfg(17408, 1, 12, PartitionScheme::Horizontal,
                       BlasVariant::IntelMklLike))
          .gflops;
  const double ob =
      m.modelDgemm(cfg(17408, 1, 12, PartitionScheme::Horizontal,
                       BlasVariant::OpenBlasLike))
          .gflops;
  EXPECT_GT(mkl, ob);
}

TEST(CpuModel, SmtThreadsAddLessThanPhysicalCores) {
  const CpuModel m(haswellE52670v3());
  // Small N to stay out of the bandwidth plateau.
  const double g24 = m.modelDgemm(cfg(4096, 1, 24)).gflops;
  const double g48 = m.modelDgemm(cfg(4096, 2, 24)).gflops;
  const double g12 = m.modelDgemm(cfg(4096, 1, 12)).gflops;
  const double physicalGain = g24 - g12;  // adding 12 physical cores
  const double smtGain = g48 - g24;       // adding 24 SMT siblings
  EXPECT_LT(smtGain, physicalGain);
}

TEST(CpuModel, SameAvgUtilizationDifferentPower) {
  // The heart of Fig 4: configurations with (nearly) the same average
  // CPU utilization draw materially different dynamic power.
  const CpuModel m(haswellE52670v3());
  const auto a = m.modelDgemm(cfg(17408, 1, 24));   // 1 group of 24
  const auto b = m.modelDgemm(cfg(17408, 12, 2));   // 12 groups of 2
  EXPECT_NEAR(a.avgUtilization, b.avgUtilization, 0.02);
  const double relPowerGap =
      std::fabs(a.dynamicPower.value() - b.dynamicPower.value()) /
      a.dynamicPower.value();
  EXPECT_GT(relPowerGap, 0.03);
}

TEST(CpuModel, MoreThreadgroupsMoreTlbActivity) {
  // The [8] mechanism: each group separately streams the shared B.
  const CpuModel m(haswellE52670v3());
  const auto p1 = m.modelDgemm(cfg(17408, 1, 24));
  const auto p12 = m.modelDgemm(cfg(17408, 12, 2));
  EXPECT_GT(p12.tlbWalksPerSec, p1.tlbWalksPerSec * 1.5);
}

TEST(CpuModel, SquarePartitioningAvoidsRemoteTraffic) {
  // Horizontal shares B across sockets; Square partitions it.  With both
  // sockets active, Horizontal pays QPI power.
  const CpuModel m(haswellE52670v3());
  const auto hor =
      m.modelDgemm(cfg(17408, 2, 12, PartitionScheme::Horizontal));
  const auto sq = m.modelDgemm(cfg(17408, 2, 12, PartitionScheme::Square));
  EXPECT_GT(hor.dynamicPower.value(), sq.dynamicPower.value());
}

TEST(CpuModel, SingleSocketConfigsUseHalfBandwidth) {
  const CpuModel m(haswellE52670v3());
  // 12 threads fit one socket... threads are scattered across both
  // sockets round-robin by core index, so with >1 thread both sockets
  // engage; a single thread stays on one socket.
  const auto one = m.modelDgemm(cfg(17408, 1, 1));
  EXPECT_GT(one.gflops, 0.0);
  EXPECT_LT(one.memBandwidthGBs,
            haswellE52670v3().memBandwidthGBs * 0.5);
}

TEST(CpuModel, DynamicPowerPositiveAndBounded) {
  const CpuModel m(haswellE52670v3());
  for (int p : {1, 2, 4, 12}) {
    for (int t : {1, 2, 4}) {
      const auto r = m.modelDgemm(cfg(8192, p, t));
      EXPECT_GT(r.dynamicPower.value(), 0.0);
      EXPECT_LT(r.dynamicPower.value(), 2.0 * 120.0);  // < 2x TDP total
    }
  }
}

// --- FFT response (Fig 1 CPU curve) ---

TEST(CpuFft, EnergyPerWorkRisesAcrossCacheRegimes) {
  const CpuModel m(haswellE52670v3());
  auto energyPerWork = [&](int n) {
    const auto r = m.modelFft2d(n);
    const double w = 5.0 * static_cast<double>(n) * n *
                     std::log2(static_cast<double>(n));
    return r.dynamicEnergy().value() / w;
  };
  // In-L3 (N=1024, 16 MB), out-of-L3 (N=4096), deep TLB regime (N=32768).
  const double inCache = energyPerWork(1024);
  const double dram = energyPerWork(4096);
  const double tlb = energyPerWork(32768);
  EXPECT_GT(dram, inCache);
  EXPECT_GT(tlb, dram * 0.9);
}

TEST(CpuFft, StrongEpViolatedAcrossSizeSweep) {
  // E_d vs W is visibly non-proportional (Fig 1).
  const CpuModel m(haswellE52670v3());
  double minRatio = 1e300, maxRatio = 0.0;
  for (int n : {256, 512, 1024, 2048, 4096, 8192, 16384, 32768}) {
    const auto r = m.modelFft2d(n);
    const double w = 5.0 * static_cast<double>(n) * n *
                     std::log2(static_cast<double>(n));
    const double ratio = r.dynamicEnergy().value() / w;
    minRatio = std::min(minRatio, ratio);
    maxRatio = std::max(maxRatio, ratio);
  }
  EXPECT_GT(maxRatio / minRatio, 1.5);  // far from E = c W
}

TEST(CpuFft, NonPowerOfTwoSlower) {
  const CpuModel m(haswellE52670v3());
  const auto pow2 = m.modelFft2d(4096);
  const auto prime = m.modelFft2d(4099);
  EXPECT_GT(prime.time.value(), pow2.time.value());
}

TEST(CpuFft, UsesAllPhysicalCores) {
  const CpuModel m(haswellE52670v3());
  const auto r = m.modelFft2d(2048);
  const auto busy =
      std::count_if(r.coreUtilization.begin(), r.coreUtilization.end(),
                    [](double u) { return u > 0.0; });
  EXPECT_EQ(busy, 24);
}

// Parameterized sweep: the model is well-formed across the whole
// configuration space.
struct CfgParam {
  int p, t;
};

class CpuCfgSweep : public ::testing::TestWithParam<CfgParam> {};

TEST_P(CpuCfgSweep, WellFormedOutputs) {
  const CpuModel m(haswellE52670v3());
  for (const auto scheme :
       {PartitionScheme::Horizontal, PartitionScheme::Square}) {
    for (const auto variant :
         {BlasVariant::IntelMklLike, BlasVariant::OpenBlasLike}) {
      const auto r = m.modelDgemm(
          cfg(8192, GetParam().p, GetParam().t, scheme, variant));
      EXPECT_GT(r.gflops, 0.0);
      EXPECT_GT(r.time.value(), 0.0);
      EXPECT_GT(r.dynamicPower.value(), 0.0);
      EXPECT_GE(r.avgUtilization, 0.0);
      EXPECT_LE(r.avgUtilization, 1.0);
      for (double u : r.coreUtilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CpuCfgSweep,
    ::testing::Values(CfgParam{1, 1}, CfgParam{1, 12}, CfgParam{1, 24},
                      CfgParam{2, 12}, CfgParam{2, 24}, CfgParam{3, 8},
                      CfgParam{4, 6}, CfgParam{6, 4}, CfgParam{8, 3},
                      CfgParam{12, 1}, CfgParam{12, 4}, CfgParam{24, 2}));

}  // namespace
}  // namespace ep::hw
