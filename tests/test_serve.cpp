// epserve broker tests: LRU cache behaviour, request coalescing,
// deadlines and backpressure, shutdown draining, and metrics-snapshot
// consistency under concurrency.  Everything runs in-process against a
// controllable fake engine (no sockets); the last tests exercise the
// real EpStudyEngine end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/watchdog.hpp"
#include "obs/trace.hpp"
#include "pareto/front.hpp"
#include "pareto/tradeoff.hpp"
#include "net/frame.hpp"
#include "serve/breaker.hpp"
#include "serve/broker.hpp"
#include "serve/engine.hpp"
#include "serve/lru_cache.hpp"
#include "serve/wire.hpp"
#include "serve/wire_binary.hpp"

namespace ep::serve {
namespace {

pareto::BiPoint mk(double t, double e, std::uint64_t id) {
  pareto::BiPoint p;
  p.time = Seconds{t};
  p.energy = Joules{e};
  p.configId = id;
  p.label = "cfg" + std::to_string(id);
  return p;
}

// A deterministic engine whose evaluate() can be gated (to hold a study
// "in flight" while the test arranges concurrent requests) and counted
// (to prove coalescing executes exactly one study).
class FakeEngine : public TuningEngine {
 public:
  explicit FakeEngine(bool gated = false) : gated_(gated) {}

  std::uint64_t tuningHash(Device d) const override {
    return 0xFA4Eu + static_cast<std::uint64_t>(d);
  }

  core::WorkloadResult evaluate(Device d, int n,
                                ThreadPool* pool) const override {
    lastPool_ = pool;
    {
      std::unique_lock lk(mu_);
      ++entered_;
      cv_.notify_all();
      if (gated_) cv_.wait(lk, [this] { return released_; });
    }
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (failAll_.load(std::memory_order_relaxed) || n == failN_) {
      throw ResourceError("synthetic engine failure");
    }
    core::WorkloadResult r;
    r.n = n;
    // Two synthetic measured configs so attributeEnergy() sees a
    // deterministic ledger: 0.01*n + 2 J over 5 windows, 1 remeasure.
    apps::GpuDataPoint d1;
    d1.dynamicEnergy = Joules{0.01 * n};
    d1.repetitions = 3;
    d1.remeasures = 1;
    apps::GpuDataPoint d2;
    d2.dynamicEnergy = Joules{2.0};
    d2.repetitions = 2;
    r.data = {d1, d2};
    const double s = 1.0 + static_cast<double>(n) * 1e-4 +
                     (d == Device::K40c ? 0.01 : 0.0);
    r.points = {mk(1.0 * s, 10.0, 0), mk(1.1 * s, 7.0, 1),
                mk(1.5 * s, 4.0, 2), mk(2.0 * s, 3.5, 3)};
    r.globalFront = pareto::paretoFront(r.points);
    r.localFront = pareto::localFront(r.points, 2);
    r.globalTradeoff = pareto::analyzeTradeoff(r.points);
    if (!r.localFront.empty()) {
      r.localTradeoff = pareto::analyzeTradeoff(r.localFront);
    }
    return r;
  }

  void failOn(int n) { failN_ = n; }
  void failAlways(bool on = true) {
    failAll_.store(on, std::memory_order_relaxed);
  }

  // Block until a worker is inside evaluate().
  void waitEntered(int count = 1) const {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this, count] { return entered_ >= count; });
  }

  void release() {
    std::lock_guard lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

  int calls() const { return calls_.load(std::memory_order_relaxed); }
  ThreadPool* lastPool() const { return lastPool_; }

 private:
  bool gated_;
  int failN_ = -1;
  std::atomic<bool> failAll_{false};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int entered_ = 0;
  bool released_ = false;
  mutable std::atomic<int> calls_{0};
  mutable std::atomic<ThreadPool*> lastPool_{nullptr};
};

TuneRequest tuneReq(int n, double budget = 0.5, double deadlineMs = 0.0,
                    Device d = Device::P100) {
  TuneRequest r;
  r.device = d;
  r.n = n;
  r.maxDegradation = budget;
  r.deadlineMs = deadlineMs;
  return r;
}

// --- LRU cache ---

TEST(LruCache, EvictsLeastRecentlyUsedInOrder) {
  LruCache<int, int> cache(3);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  EXPECT_EQ(cache.keysMostRecentFirst(), (std::vector<int>{3, 2, 1}));

  ASSERT_TRUE(cache.get(1).has_value());  // promote 1
  EXPECT_EQ(cache.keysMostRecentFirst(), (std::vector<int>{1, 3, 2}));

  cache.put(4, 40);  // evicts 2, the LRU
  EXPECT_EQ(cache.keysMostRecentFirst(), (std::vector<int>{4, 1, 3}));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.put(5, 50);  // evicts 3
  cache.put(6, 60);  // evicts 1
  EXPECT_EQ(cache.keysMostRecentFirst(), (std::vector<int>{6, 5, 4}));
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(LruCache, CountsHitsAndMisses) {
  LruCache<int, int> cache(2);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, 11);
  EXPECT_EQ(cache.get(1).value(), 11);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(LruCache, OverwritePromotesAndKeepsSize) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite promotes, no eviction
  EXPECT_EQ(cache.keysMostRecentFirst(), (std::vector<int>{1, 2}));
  EXPECT_EQ(cache.get(1).value(), 11);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), PreconditionError);
}

// --- latency histogram quantiles ---

TEST(LatencyHistogram, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(1.0), 0.0);
}

TEST(LatencyHistogram, InvalidQuantileThrows) {
  LatencyHistogram h;
  h.record(1.0);
  EXPECT_THROW((void)h.quantileUpperBoundMs(0.0), PreconditionError);
  EXPECT_THROW((void)h.quantileUpperBoundMs(-0.1), PreconditionError);
  EXPECT_THROW((void)h.quantileUpperBoundMs(1.5), PreconditionError);
}

TEST(LatencyHistogram, QuantileFindsBoundaryBuckets) {
  LatencyHistogram h;
  // One sample in the first bucket, one in the last finite bucket.
  h.record(0.01);    // <= 0.05
  h.record(1500.0);  // <= 2000
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(0.5),
                   LatencyHistogram::kUpperBoundsMs.front());
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(1.0),
                   LatencyHistogram::kUpperBoundsMs.back());
}

TEST(LatencyHistogram, BucketUpperBoundsAreInclusive) {
  LatencyHistogram h;
  h.record(0.05);  // exactly the first bound stays in bucket 0
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(1.0), 0.05);
}

TEST(LatencyHistogram, OverflowBucketUsesSentinelBound) {
  LatencyHistogram h;
  h.record(10'000.0);  // beyond the last finite bound
  EXPECT_EQ(h.counts[LatencyHistogram::kBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(1.0),
                   LatencyHistogram::kUpperBoundsMs.back() * 10.0);
}

TEST(LatencyHistogram, MedianLandsInMiddleBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(0.3);  // bucket le=0.5
  for (int i = 0; i < 10; ++i) h.record(40.0); // bucket le=100
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.quantileUpperBoundMs(0.99), 100.0);
}

// --- cache + coalescing ---

TEST(Broker, SecondIdenticalRequestIsACacheHit) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);

  const TuneResponse first = broker.tune(tuneReq(100));
  ASSERT_EQ(first.status, Status::Ok);
  EXPECT_FALSE(first.cacheHit);

  const TuneResponse second = broker.tune(tuneReq(100));
  ASSERT_EQ(second.status, Status::Ok);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(second.recommendation.recommended.configId,
            first.recommendation.recommended.configId);

  EXPECT_EQ(engine->calls(), 1);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.studiesExecuted, 1u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.accepted, 2u);
}

TEST(Broker, PassesItsPoolToTheEngine) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);
  ASSERT_EQ(broker.tune(tuneReq(42)).status, Status::Ok);
  ASSERT_NE(engine->lastPool(), nullptr);
  EXPECT_EQ(engine->lastPool()->size(), 2u);
}

// A study job that fans out on the broker's own pool — with the old
// global-wait() parallelFor this was a guaranteed deadlock on a
// single-worker broker (the worker waited on its own task).  The
// per-call latch plus caller participation must complete it.
class NestedParallelEngine : public TuningEngine {
 public:
  std::uint64_t tuningHash(Device d) const override {
    return 0x4E57EDu + static_cast<std::uint64_t>(d);
  }

  core::WorkloadResult evaluate(Device d, int n,
                                ThreadPool* pool) const override {
    std::vector<double> times(64);
    const auto fill = [&](std::size_t i) {
      times[i] = 1.0 + 0.01 * static_cast<double>(i) +
                 (d == Device::K40c ? 0.5 : 0.0);
    };
    if (pool != nullptr) {
      pool->parallelFor(0, times.size(), fill);
    } else {
      for (std::size_t i = 0; i < times.size(); ++i) fill(i);
    }
    core::WorkloadResult r;
    r.n = n;
    for (std::size_t i = 0; i < times.size(); ++i) {
      r.points.push_back(
          mk(times[i], 10.0 - 0.1 * static_cast<double>(i), i));
    }
    r.globalFront = pareto::paretoFront(r.points);
    r.localFront = pareto::localFront(r.points, 2);
    r.globalTradeoff = pareto::analyzeTradeoff(r.points);
    if (!r.localFront.empty()) {
      r.localTradeoff = pareto::analyzeTradeoff(r.localFront);
    }
    return r;
  }
};

TEST(Broker, StudyJobUsingBrokerPoolCompletes) {
  auto engine = std::make_shared<NestedParallelEngine>();
  BrokerOptions opts;
  opts.threads = 1;  // the deterministic-deadlock shape under the old impl
  Broker broker(engine, opts);
  const TuneResponse resp = broker.tune(tuneReq(512));
  ASSERT_EQ(resp.status, Status::Ok);
  EXPECT_FALSE(resp.recommendation.globalFront.empty());
}

TEST(Broker, ConcurrentStudyJobsUsingBrokerPoolComplete) {
  auto engine = std::make_shared<NestedParallelEngine>();
  BrokerOptions opts;
  opts.threads = 4;
  opts.queueCapacity = 64;
  Broker broker(engine, opts);
  std::vector<std::future<TuneResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(broker.submitTune(
        tuneReq(100 + i, 0.5, 0.0,
                i % 2 == 0 ? Device::P100 : Device::K40c)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::Ok);
}

TEST(Broker, DevicesDoNotShareCacheEntries) {
  auto engine = std::make_shared<FakeEngine>();
  Broker broker(engine, BrokerOptions{});
  ASSERT_EQ(broker.tune(tuneReq(64, 0.5, 0.0, Device::P100)).status,
            Status::Ok);
  ASSERT_EQ(broker.tune(tuneReq(64, 0.5, 0.0, Device::K40c)).status,
            Status::Ok);
  EXPECT_EQ(engine->calls(), 2);
}

TEST(Broker, ConcurrentIdenticalRequestsCoalesceIntoOneStudy) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 4;
  opts.queueCapacity = 32;
  Broker broker(engine, opts);

  auto first = broker.submitTune(tuneReq(100, /*budget=*/0.5));
  engine->waitEntered();  // the study for N=100 is now in flight

  std::vector<std::future<TuneResponse>> rest;
  for (int i = 0; i < 7; ++i) {
    rest.push_back(broker.submitTune(tuneReq(100, /*budget=*/0.0)));
  }
  // Registration is synchronous: all 7 joined the in-flight study.
  EXPECT_EQ(broker.metrics().coalesced, 7u);

  engine->release();
  const TuneResponse r0 = first.get();
  ASSERT_EQ(r0.status, Status::Ok);
  EXPECT_FALSE(r0.coalesced);
  // Budget 0.5 admits the cheaper cfg2; the coalesced zero-budget
  // requests still get their own budget applied to the shared study.
  EXPECT_EQ(r0.recommendation.recommended.configId, 2u);
  for (auto& f : rest) {
    const TuneResponse r = f.get();
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_TRUE(r.coalesced);
    EXPECT_EQ(r.recommendation.recommended.configId, 0u);
  }

  EXPECT_EQ(engine->calls(), 1) << "coalescing must run exactly one study";
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.studiesExecuted, 1u);
  EXPECT_EQ(m.coalesced, 7u);
  EXPECT_EQ(m.completed, 8u);
}

TEST(Broker, CoalescedWaitersSeeEngineFailure) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  engine->failOn(666);
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);

  auto first = broker.submitTune(tuneReq(666));
  engine->waitEntered();
  auto second = broker.submitTune(tuneReq(666));
  engine->release();

  EXPECT_EQ(first.get().status, Status::Error);
  const TuneResponse r2 = second.get();
  EXPECT_EQ(r2.status, Status::Error);
  EXPECT_NE(r2.error.find("synthetic"), std::string::npos);
  EXPECT_EQ(broker.metrics().failed, 2u);
}

// --- per-request energy attribution (the RequestReport ledger) ---

// The ledger FakeEngine::evaluate stamps per executed study.
double fakeStudyJoules(int n) { return 0.01 * n + 2.0; }

TEST(Broker, RequestReportAttributesColdStudyAndZeroesCacheHits) {
  auto engine = std::make_shared<FakeEngine>();
  Broker broker(engine, BrokerOptions{});

  const TuneResponse cold = broker.tune(tuneReq(100));
  ASSERT_EQ(cold.status, Status::Ok);
  EXPECT_EQ(cold.report.studiesExecuted, 1u);
  EXPECT_DOUBLE_EQ(cold.report.attributedJoules, fakeStudyJoules(100));
  EXPECT_EQ(cold.report.measurementWindows, 5u);
  EXPECT_EQ(cold.report.remeasures, 1u);
  EXPECT_EQ(cold.report.cacheHits, 0u);

  const TuneResponse warm = broker.tune(tuneReq(100));
  ASSERT_EQ(warm.status, Status::Ok);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.report.cacheHits, 1u);
  EXPECT_EQ(warm.report.studiesExecuted, 0u);
  EXPECT_DOUBLE_EQ(warm.report.attributedJoules, 0.0);
  EXPECT_EQ(warm.report.measurementWindows, 0u);
  // The mix total equals the energy actually measured: one cold study.
  EXPECT_DOUBLE_EQ(
      cold.report.attributedJoules + warm.report.attributedJoules,
      fakeStudyJoules(100));
}

TEST(Broker, CoalescedPairReportsExactlyOneStudyOfEnergy) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 4;
  Broker broker(engine, opts);

  auto owner = broker.submitTune(tuneReq(200));
  engine->waitEntered();  // the owner is inside the study
  auto joiner = broker.submitTune(tuneReq(200));
  while (broker.metrics().coalesced < 1) std::this_thread::yield();
  engine->release();

  const TuneResponse r0 = owner.get();
  const TuneResponse r1 = joiner.get();
  ASSERT_EQ(r0.status, Status::Ok);
  ASSERT_EQ(r1.status, Status::Ok);
  EXPECT_EQ(engine->calls(), 1);

  // The executing owner holds the whole ledger; the join rides free.
  EXPECT_EQ(r0.report.studiesExecuted, 1u);
  EXPECT_DOUBLE_EQ(r0.report.attributedJoules, fakeStudyJoules(200));
  EXPECT_TRUE(r1.coalesced);
  EXPECT_EQ(r1.report.coalesced, 1u);
  EXPECT_EQ(r1.report.studiesExecuted, 0u);
  EXPECT_DOUBLE_EQ(r1.report.attributedJoules, 0.0);
  EXPECT_EQ(r1.report.measurementWindows, 0u);
  // No double counting: the pair sums to exactly one study's energy.
  EXPECT_DOUBLE_EQ(
      r0.report.attributedJoules + r1.report.attributedJoules,
      fakeStudyJoules(200));
}

TEST(Broker, StudyReportAggregatesOverTheSweep) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);
  StudyRequest req;
  req.nBegin = 100;
  req.nEnd = 300;
  req.nStep = 100;

  const StudyResponse cold = broker.study(req);
  ASSERT_EQ(cold.status, Status::Ok);
  EXPECT_EQ(cold.report.studiesExecuted, 3u);
  EXPECT_DOUBLE_EQ(cold.report.attributedJoules,
                   fakeStudyJoules(100) + fakeStudyJoules(200) +
                       fakeStudyJoules(300));
  EXPECT_EQ(cold.report.measurementWindows, 15u);
  EXPECT_EQ(cold.report.remeasures, 3u);
  EXPECT_EQ(cold.report.cacheHits, 0u);

  const StudyResponse warm = broker.study(req);
  ASSERT_EQ(warm.status, Status::Ok);
  EXPECT_EQ(warm.report.cacheHits, 3u);
  EXPECT_EQ(warm.report.studiesExecuted, 0u);
  EXPECT_DOUBLE_EQ(warm.report.attributedJoules, 0.0);
}

TEST(Broker, EnergyLedgerMetricsCarryDeviceLabels) {
  auto engine = std::make_shared<FakeEngine>();
  Broker broker(engine, BrokerOptions{});
  ASSERT_EQ(broker.tune(tuneReq(100)).status, Status::Ok);
  ASSERT_EQ(broker.tune(tuneReq(100, 0.5, 0.0, Device::K40c)).status,
            Status::Ok);
  const std::string text = broker.renderPrometheus();
  EXPECT_NE(text.find("ep_request_energy_joules{device=\"P100\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ep_request_energy_joules{device=\"K40c\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ep_request_windows_total{device=\"P100\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("ep_request_windows_total{device=\"K40c\"} 5"),
            std::string::npos);
}

// --- watchdog feed from the serve outcome stream ---

TEST(Broker, ErrorStormTripsTheWatchdogErrorBudget) {
  core::WatchdogOptions wopts;
  wopts.minRequests = 4;
  wopts.requestWindow = 8;
  wopts.errorBudget = 0.5;
  core::PowerAnomalyWatchdog watchdog(wopts);

  auto engine = std::make_shared<FakeEngine>();
  engine->failAlways();
  BrokerOptions opts;
  opts.watchdog = &watchdog;
  Broker broker(engine, opts);
  for (int i = 0; i < 6; ++i) {
    // Distinct workloads: no cache, every request fails cold.
    EXPECT_EQ(broker.tune(tuneReq(100 + i)).status, Status::Error);
  }
  EXPECT_GE(watchdog.activeAlerts(), 1u);
  bool sawBudget = false;
  for (const auto& e : watchdog.events()) {
    if (std::string(e.kind) == "error_budget") sawBudget = true;
  }
  EXPECT_TRUE(sawBudget);
}

// --- trace propagation across the broker's pool ---

TEST(Broker, TraceContextPropagatesOntoBrokerWorkers) {
  obs::Tracer::global().clear();
  obs::Tracer::global().setEnabled(true);
  auto engine = std::make_shared<FakeEngine>();

  std::uint64_t rootSpanId = 0;
  std::uint32_t rootTid = 0;
  {
    // tune() returns when the worker fulfills the promise, which
    // happens *inside* the serve/tune_job span — scope the broker so
    // its destructor joins the workers and flushes every span before
    // the snapshot below.
    BrokerOptions opts;
    opts.threads = 2;
    Broker broker(engine, opts);
    obs::ScopedTraceContext scope(obs::TraceContext{0x7AC3u, 0u});
    obs::Span root("test/request");
    rootSpanId = root.spanId();
    rootTid = obs::Tracer::global().threadBuffer().tid;
    ASSERT_EQ(broker.tune(tuneReq(100)).status, Status::Ok);
  }
  obs::Tracer::global().setEnabled(false);

  bool sawTuneJob = false;
  bool sawEval = false;
  for (const auto& e : obs::Tracer::global().snapshot()) {
    const std::string name = e.name;
    if (name == "serve/tune_job") {
      sawTuneJob = true;
      // The job span carries the request identity onto the worker
      // thread and links straight back to the submitting span.
      EXPECT_EQ(e.traceId, 0x7AC3u);
      EXPECT_EQ(e.parentSpanId, rootSpanId);
      EXPECT_NE(e.tid, rootTid);
    } else if (name == "serve/engine_evaluate") {
      sawEval = true;
      EXPECT_EQ(e.traceId, 0x7AC3u);
    }
  }
  EXPECT_TRUE(sawTuneJob);
  EXPECT_TRUE(sawEval);
  obs::Tracer::global().clear();
}

// Regression: a coalesced follower's completion used to run under the
// *owner's* thread-local trace context (the owner's worker fulfills
// every waiter), so follower completions were attributed to the wrong
// trace.  The broker now stamps the submitter's context into the job
// and re-installs it around completion.
TEST(Broker, CoalescedFollowerCompletionKeepsItsOwnTrace) {
  obs::Tracer::global().clear();
  obs::Tracer::global().setEnabled(true);
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);

  constexpr std::uint64_t kOwnerTrace = 0xA11CEu;
  constexpr std::uint64_t kFollowerTrace = 0xB0Bu;
  {
    BrokerOptions opts;
    opts.threads = 1;  // one worker: the second request must coalesce
    Broker broker(engine, opts);

    std::future<TuneResponse> owner;
    {
      obs::ScopedTraceContext scope(obs::TraceContext{kOwnerTrace, 0u});
      owner = broker.submitTune(tuneReq(640));
    }
    engine->waitEntered();  // owner study is now in flight

    std::future<TuneResponse> follower;
    {
      obs::ScopedTraceContext scope(obs::TraceContext{kFollowerTrace, 0u});
      follower = broker.submitTune(tuneReq(640));
    }
    engine->release();
    EXPECT_EQ(owner.get().status, Status::Ok);
    const auto resp = follower.get();
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.report.coalesced, 1u);
  }
  obs::Tracer::global().setEnabled(false);

  bool ownerCompletion = false;
  bool followerCompletion = false;
  for (const auto& e : obs::Tracer::global().snapshot()) {
    if (std::string(e.name) != "serve/complete_tune") continue;
    if (e.traceId == kOwnerTrace) ownerCompletion = true;
    if (e.traceId == kFollowerTrace) followerCompletion = true;
    // No completion may leak onto an unrelated trace.
    EXPECT_TRUE(e.traceId == kOwnerTrace || e.traceId == kFollowerTrace);
  }
  EXPECT_TRUE(ownerCompletion);
  EXPECT_TRUE(followerCompletion);
  obs::Tracer::global().clear();
}

// --- deadlines, backpressure, shutdown ---

TEST(Broker, ExpiredQueuedRequestIsRejected) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 1;
  opts.queueCapacity = 8;
  Broker broker(engine, opts);

  auto blocker = broker.submitTune(tuneReq(1));
  engine->waitEntered();  // the lone worker is now stuck in the study
  auto doomed = broker.submitTune(tuneReq(2, 0.5, /*deadlineMs=*/5.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine->release();

  EXPECT_EQ(blocker.get().status, Status::Ok);
  EXPECT_EQ(doomed.get().status, Status::DeadlineExceeded);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.rejectedDeadline, 1u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(Broker, FullQueueRejectsWithBackpressure) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 1;
  opts.queueCapacity = 1;
  Broker broker(engine, opts);

  auto running = broker.submitTune(tuneReq(1));
  engine->waitEntered();  // worker busy, queue empty again
  auto queued = broker.submitTune(tuneReq(2));
  auto overflow = broker.submitTune(tuneReq(3));

  EXPECT_EQ(overflow.get().status, Status::QueueFull);
  engine->release();
  EXPECT_EQ(running.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.rejectedQueueFull, 1u);
  EXPECT_EQ(m.accepted, 2u);
}

TEST(Broker, ShutdownDrainsInFlightAndQueuedWork) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 1;
  opts.queueCapacity = 8;
  Broker broker(engine, opts);

  auto inflight = broker.submitTune(tuneReq(1));
  engine->waitEntered();
  auto queued = broker.submitTune(tuneReq(2));

  std::thread closer([&] { broker.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine->release();
  closer.join();

  // Drained: both futures are ready and Ok.
  EXPECT_EQ(inflight.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);

  // Post-shutdown submissions are rejected.
  EXPECT_EQ(broker.tune(tuneReq(3)).status, Status::ShuttingDown);
  EXPECT_EQ(broker.metrics().rejectedShutdown, 1u);
}

TEST(Broker, InvalidRequestsFailFast) {
  auto engine = std::make_shared<FakeEngine>();
  Broker broker(engine, BrokerOptions{});
  EXPECT_EQ(broker.tune(tuneReq(0)).status, Status::Error);
  EXPECT_EQ(broker.tune(tuneReq(10, -0.5)).status, Status::Error);
  StudyRequest bad;
  bad.nBegin = 10;
  bad.nEnd = 5;
  EXPECT_EQ(broker.study(bad).status, Status::Error);
  EXPECT_EQ(broker.metrics().failed, 3u);
  EXPECT_EQ(engine->calls(), 0);
}

// --- study requests ---

TEST(Broker, StudySweepAggregatesAndCaches) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);

  StudyRequest req;
  req.device = Device::P100;
  req.nBegin = 100;
  req.nEnd = 300;
  req.nStep = 100;

  const StudyResponse cold = broker.study(req);
  ASSERT_EQ(cold.status, Status::Ok);
  EXPECT_EQ(cold.statistics.workloads, 3u);
  EXPECT_EQ(cold.workloadCacheHits, 0u);
  EXPECT_EQ(engine->calls(), 3);

  const StudyResponse warm = broker.study(req);
  ASSERT_EQ(warm.status, Status::Ok);
  EXPECT_EQ(warm.workloadCacheHits, 3u);
  EXPECT_EQ(engine->calls(), 3);  // fully served from cache
  EXPECT_DOUBLE_EQ(warm.statistics.avgGlobalFrontSize,
                   cold.statistics.avgGlobalFrontSize);
}

TEST(Broker, StudyAndTuneShareTheCache) {
  auto engine = std::make_shared<FakeEngine>();
  Broker broker(engine, BrokerOptions{});
  ASSERT_EQ(broker.tune(tuneReq(100)).status, Status::Ok);
  StudyRequest req;
  req.nBegin = 100;
  req.nEnd = 100;
  const StudyResponse resp = broker.study(req);
  ASSERT_EQ(resp.status, Status::Ok);
  EXPECT_EQ(resp.workloadCacheHits, 1u);
  EXPECT_EQ(engine->calls(), 1);
}

// --- metrics consistency under concurrency ---

TEST(Broker, MetricsSnapshotStaysConsistentUnderLoad) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 4;
  opts.queueCapacity = 256;
  opts.cacheCapacity = 4;  // force evictions across 10 distinct keys
  Broker broker(engine, opts);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 50;
  std::atomic<bool> stopPolling{false};
  std::thread poller([&] {
    // Concurrent snapshots must never tear (verified by TSan) and never
    // violate the admission identity.
    while (!stopPolling.load()) {
      const ServeMetrics m = broker.metrics();
      EXPECT_LE(m.completed + m.failed + m.rejectedDeadline, m.accepted);
      EXPECT_LE(m.cacheSize, m.cacheCapacity);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::vector<std::thread> submitters;
  std::mutex futuresMu;
  std::vector<std::future<TuneResponse>> futures;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto f = broker.submitTune(tuneReq((t * kPerThread + i) % 10 + 1));
        std::lock_guard lk(futuresMu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::Ok);
  stopPolling.store(true);
  poller.join();

  const ServeMetrics m = broker.metrics();
  const auto total =
      static_cast<std::uint64_t>(kSubmitters) * kPerThread;
  EXPECT_EQ(m.accepted, total);
  EXPECT_EQ(m.completed + m.failed + m.rejectedDeadline, total);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.latency.total(), m.completed);
  EXPECT_EQ(m.queueDepth, 0u);
  EXPECT_EQ(m.inFlightStudies, 0u);
  EXPECT_GE(m.studiesExecuted, 10u);  // 10 keys, capacity 4: recomputes
  EXPECT_GT(m.cacheEvictions, 0u);
  EXPECT_LE(m.cacheSize, 4u);
}

TEST(Broker, RenderPrometheusExposesRegistryAndCacheState) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);

  EXPECT_EQ(broker.tune(tuneReq(1000)).status, Status::Ok);
  EXPECT_EQ(broker.tune(tuneReq(1000)).status, Status::Ok);  // cache hit

  const std::string text = broker.renderPrometheus();
  EXPECT_NE(text.find("# TYPE ep_serve_accepted_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ep_serve_accepted_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("ep_serve_completed_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("ep_serve_studies_executed_total 1\n"),
            std::string::npos);
  // Cache stats are delta-synced into the registry at render time.  A
  // cold tune probes the cache at admission, at dequeue and in
  // obtainStudy, so one miss on the wire means three lookups.
  EXPECT_NE(text.find("ep_serve_cache_hits_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("ep_serve_cache_misses_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ep_serve_cache_size 1\n"), std::string::npos);
  EXPECT_NE(text.find("ep_serve_queue_depth 0\n"), std::string::npos);
  // Histogram is exposed in full Prometheus shape.
  EXPECT_NE(text.find("# TYPE ep_serve_request_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("ep_serve_request_latency_ms_bucket{le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("ep_serve_request_latency_ms_count 2\n"),
            std::string::npos);

  // Rendering twice must not double-count the synced cache deltas, and
  // the wire snapshot must agree with the exposition.
  const std::string again = broker.renderPrometheus();
  EXPECT_NE(again.find("ep_serve_cache_hits_total 1\n"), std::string::npos);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.cacheHits, 1u);
  EXPECT_EQ(m.cacheMisses, 3u);
  EXPECT_EQ(m.accepted, 2u);
  EXPECT_EQ(m.latency.total(), 2u);
}

// --- the real engine ---

TEST(EpStudyEngine, EndToEndTuneIsDeterministic) {
  auto engine = std::make_shared<EpStudyEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);

  const TuneResponse r1 = broker.tune(tuneReq(1024, 0.11));
  ASSERT_EQ(r1.status, Status::Ok) << r1.error;
  EXPECT_FALSE(r1.recommendation.recommended.label.empty());
  EXPECT_FALSE(r1.recommendation.globalFront.empty());
  EXPECT_GE(r1.recommendation.energySavings, 0.0);
  EXPECT_LE(r1.recommendation.performanceDegradation, 0.11 + 1e-12);

  const TuneResponse r2 = broker.tune(tuneReq(1024, 0.11));
  ASSERT_EQ(r2.status, Status::Ok);
  EXPECT_TRUE(r2.cacheHit);
  EXPECT_EQ(r2.recommendation.recommended.label,
            r1.recommendation.recommended.label);

  // A fresh broker + engine with the same seed reproduces the answer.
  auto engineB = std::make_shared<EpStudyEngine>();
  Broker brokerB(engineB, opts);
  const TuneResponse r3 = brokerB.tune(tuneReq(1024, 0.11));
  ASSERT_EQ(r3.status, Status::Ok);
  EXPECT_EQ(r3.recommendation.recommended.label,
            r1.recommendation.recommended.label);
}

TEST(EpStudyEngine, FrontRecommendationMatchesFullPointSet) {
  // The broker recommends over the cached global front; that must be
  // equivalent to recommending over the full measured point set.
  const EpStudyEngine engine;
  const core::WorkloadResult r = engine.evaluate(Device::K40c, 1024);
  for (double budget : {0.0, 0.05, 0.11, 0.5}) {
    const core::BiObjectiveTuner tuner(budget);
    const auto fromPoints = tuner.recommend(r.points);
    const auto fromFront = tuner.recommend(r.globalFront);
    EXPECT_EQ(fromPoints.recommended.configId,
              fromFront.recommended.configId)
        << "budget " << budget;
    EXPECT_DOUBLE_EQ(fromPoints.energySavings, fromFront.energySavings);
  }
}

TEST(EpStudyEngine, TuningHashSeparatesDevicesAndOptions) {
  const EpStudyEngine a;
  EXPECT_NE(a.tuningHash(Device::P100), a.tuningHash(Device::K40c));
  EpStudyEngineOptions o;
  o.seed = 123;
  const EpStudyEngine b(o);
  EXPECT_NE(a.tuningHash(Device::P100), b.tuningHash(Device::P100));
}

TEST(StudyRequestSizes, ExpandsAndValidates) {
  StudyRequest r;
  r.nBegin = 100;
  r.nEnd = 500;
  r.nStep = 200;
  EXPECT_EQ(r.sizes(), (std::vector<int>{100, 300, 500}));
  r.nStep = 0;
  EXPECT_TRUE(r.sizes().empty());
  r.nStep = 1;
  r.nEnd = 99;
  EXPECT_TRUE(r.sizes().empty());
  r.nBegin = -1;
  EXPECT_TRUE(r.sizes().empty());
}

// --- wire parser hardening ---

TEST(Wire, ParserRejectsOversizedFrames) {
  // A frame one byte over the ceiling must be refused before any
  // parsing work is attempted.
  const std::string line =
      "{\"a\":\"" + std::string(wire::kMaxFrameBytes, 'x') + "\"}";
  std::string error;
  EXPECT_FALSE(wire::parseObject(line, &error).has_value());
  EXPECT_EQ(error, "frame too large");
}

TEST(Wire, ParserRejectsDuplicateKeys) {
  std::string error;
  EXPECT_FALSE(
      wire::parseObject(R"({"n":1,"n":2})", &error).has_value());
  EXPECT_EQ(error, "duplicate key");
}

TEST(Wire, ParserRejectsUnterminatedStrings) {
  std::string error;
  EXPECT_FALSE(wire::parseObject(R"({"op":"tun)", &error).has_value());
  EXPECT_EQ(error, "unterminated string");
  // Trailing backslash: the escape itself runs off the end.
  EXPECT_FALSE(wire::parseObject("{\"op\":\"a\\", &error).has_value());
  EXPECT_EQ(error, "unterminated string");
}

TEST(Wire, ParserRejectsBadEscapesAndNesting) {
  std::string error;
  EXPECT_FALSE(wire::parseObject(R"({"op":"\x"})", &error).has_value());
  EXPECT_EQ(error, "bad string escape");
  EXPECT_FALSE(wire::parseObject(R"({"op":"\u12"})", &error).has_value());
  EXPECT_EQ(error, "bad string escape");
  // The protocol is flat: nested containers are rejected, not parsed.
  EXPECT_FALSE(wire::parseObject(R"({"a":{"b":1}})", &error).has_value());
  EXPECT_FALSE(wire::parseObject(R"({"a":[1,2]})", &error).has_value());
}

TEST(Wire, ResponsesCarryStalenessOnTheWire) {
  TuneResponse tr;
  tr.status = Status::Ok;
  tr.stale = true;
  EXPECT_NE(wire::encodeTuneResponse(tr).find("\"stale\":true"),
            std::string::npos);
  StudyResponse sr;
  sr.status = Status::Ok;
  sr.staleWorkloads = 2;
  EXPECT_NE(wire::encodeStudyResponse(sr).find("\"staleWorkloads\":2"),
            std::string::npos);
}

TEST(Wire, DecodesTraceIdReportAndEventsOp) {
  std::string error;
  const auto tune = wire::decodeRequest(
      R"({"op":"tune","device":"p100","n":256,"maxDegradation":0.1,)"
      R"("trace_id":"deadbeef","report":true})",
      &error);
  ASSERT_TRUE(tune) << error;
  EXPECT_EQ(tune->traceId, "deadbeef");
  EXPECT_TRUE(tune->report);

  const auto plain = wire::decodeRequest(
      R"({"op":"tune","device":"p100","n":256,"maxDegradation":0.1})",
      &error);
  ASSERT_TRUE(plain) << error;
  EXPECT_TRUE(plain->traceId.empty());
  EXPECT_FALSE(plain->report);

  const auto events =
      wire::decodeRequest(R"({"op":"events","since":3})", &error);
  ASSERT_TRUE(events) << error;
  EXPECT_EQ(events->op, wire::WireRequest::Op::Events);
  EXPECT_EQ(events->eventsSince, 3u);
  const auto all = wire::decodeRequest(R"({"op":"events"})", &error);
  ASSERT_TRUE(all) << error;
  EXPECT_EQ(all->eventsSince, 0u);
  EXPECT_FALSE(
      wire::decodeRequest(R"({"op":"events","since":-1})", &error));
}

TEST(Wire, TuneResponseEchoesTraceIdAndLedger) {
  TuneResponse tr;
  tr.status = Status::Ok;
  tr.report.attributedJoules = 3.25;
  tr.report.measurementWindows = 5;
  tr.report.studiesExecuted = 1;
  const std::string out = wire::encodeTuneResponse(tr, "deadbeef", true);
  std::string error;
  ASSERT_TRUE(wire::parseObject(out, &error)) << error;
  EXPECT_NE(out.find("\"trace_id\":\"deadbeef\""), std::string::npos);
  EXPECT_NE(out.find("\"attributedJoules\":3.25"), std::string::npos);
  EXPECT_NE(out.find("\"measurementWindows\":5"), std::string::npos);
  EXPECT_NE(out.find("\"studiesExecuted\":1"), std::string::npos);
  // Off by default: no trace echo, no ledger.
  const std::string bare = wire::encodeTuneResponse(tr);
  EXPECT_EQ(bare.find("trace_id"), std::string::npos);
  EXPECT_EQ(bare.find("attributedJoules"), std::string::npos);
}

TEST(Wire, EncodeEventsCarriesCountsAndBody) {
  const std::string out =
      wire::encodeEvents(2, 10, 1, "{\"seq\":1}\n{\"seq\":2}\n");
  std::string error;
  const auto obj = wire::parseObject(out, &error);
  ASSERT_TRUE(obj) << error;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("alerts").number, 2.0);
  EXPECT_EQ(obj->at("recorded").number, 10.0);
  EXPECT_EQ(obj->at("dropped").number, 1.0);
  // The body round-trips through the frame escaping: each line is
  // itself a parseable flat object.
  const std::string body = obj->at("body").string;
  EXPECT_EQ(body, "{\"seq\":1}\n{\"seq\":2}\n");
  const auto line = wire::parseObject("{\"seq\":1}", &error);
  ASSERT_TRUE(line);
}

TEST(Wire, DecodesMetricsFormatAndScope) {
  std::string error;
  const auto om = wire::decodeRequest(
      R"({"op":"metrics","format":"openmetrics"})", &error);
  ASSERT_TRUE(om) << error;
  EXPECT_EQ(om->metricsFormat, wire::MetricsFormat::OpenMetrics);
  EXPECT_FALSE(om->clusterScope);

  const auto cluster = wire::decodeRequest(
      R"({"op":"metrics","scope":"cluster","format":"openmetrics"})", &error);
  ASSERT_TRUE(cluster) << error;
  EXPECT_TRUE(cluster->clusterScope);
  EXPECT_EQ(cluster->metricsFormat, wire::MetricsFormat::OpenMetrics);

  // Cluster scope is an exposition: a JSON (default) format upgrades
  // to Prometheus text instead of colliding with {"op":"fleet"}.
  const auto upgraded =
      wire::decodeRequest(R"({"op":"metrics","scope":"cluster"})", &error);
  ASSERT_TRUE(upgraded) << error;
  EXPECT_TRUE(upgraded->clusterScope);
  EXPECT_EQ(upgraded->metricsFormat, wire::MetricsFormat::Prometheus);

  const auto process =
      wire::decodeRequest(R"({"op":"metrics","scope":"process"})", &error);
  ASSERT_TRUE(process) << error;
  EXPECT_FALSE(process->clusterScope);
  EXPECT_EQ(process->metricsFormat, wire::MetricsFormat::Json);

  EXPECT_FALSE(
      wire::decodeRequest(R"({"op":"metrics","format":"xml"})", &error));
  EXPECT_FALSE(
      wire::decodeRequest(R"({"op":"metrics","scope":"galaxy"})", &error));
}

TEST(Wire, DecodesTsdbOpWithValidation) {
  std::string error;
  const auto full = wire::decodeRequest(
      R"({"op":"tsdb","series":"ep_serve_request_latency_ms",)"
      R"("agg":"quantile","q":0.5,"windowMs":30000})",
      &error);
  ASSERT_TRUE(full) << error;
  EXPECT_EQ(full->op, wire::WireRequest::Op::Tsdb);
  EXPECT_EQ(full->tsdbSeries, "ep_serve_request_latency_ms");
  EXPECT_EQ(full->tsdbAgg, "quantile");
  EXPECT_DOUBLE_EQ(full->tsdbQ, 0.5);
  EXPECT_DOUBLE_EQ(full->tsdbWindowMs, 30000.0);

  const auto defaults = wire::decodeRequest(
      R"({"op":"tsdb","series":"ep_serve_completed_total"})", &error);
  ASSERT_TRUE(defaults) << error;
  EXPECT_EQ(defaults->tsdbAgg, "all");
  EXPECT_DOUBLE_EQ(defaults->tsdbQ, 0.99);
  EXPECT_DOUBLE_EQ(defaults->tsdbWindowMs, 60000.0);

  EXPECT_FALSE(wire::decodeRequest(R"({"op":"tsdb"})", &error));
  EXPECT_FALSE(wire::decodeRequest(R"({"op":"tsdb","series":""})", &error));
  EXPECT_FALSE(wire::decodeRequest(
      R"({"op":"tsdb","series":"x","agg":"median"})", &error));
  EXPECT_FALSE(wire::decodeRequest(
      R"({"op":"tsdb","series":"x","agg":"quantile","q":1.5})", &error));
  EXPECT_FALSE(wire::decodeRequest(
      R"({"op":"tsdb","series":"x","windowMs":0})", &error));
  EXPECT_FALSE(wire::decodeRequest(
      R"({"op":"tsdb","series":"x","windowMs":-5})", &error));
}

TEST(Wire, DecodesSloOp) {
  std::string error;
  const auto slo = wire::decodeRequest(R"({"op":"slo"})", &error);
  ASSERT_TRUE(slo) << error;
  EXPECT_EQ(slo->op, wire::WireRequest::Op::Slo);
}

TEST(Wire, EncodeTsdbResponseAnswersAggregations) {
  ep::obs::TimeSeriesStore store;
  ep::obs::Registry r;
  ep::obs::Counter& c = r.counter("wt_total", "h");
  // Synthetic seconds 1..5, +3 per scrape.
  for (int t = 1; t <= 5; ++t) {
    c.inc(3);
    store.ingest(r.snapshot(), static_cast<std::int64_t>(t) * 1000000000);
  }
  wire::WireRequest req;
  req.op = wire::WireRequest::Op::Tsdb;
  req.tsdbSeries = "wt_total";
  req.tsdbAgg = "all";
  req.tsdbWindowMs = 10000.0;  // covers every sample
  std::string error;
  const auto all = wire::parseObject(
      wire::encodeTsdbResponse(store, req, 5 * 1000000000LL), &error);
  ASSERT_TRUE(all) << error;
  EXPECT_EQ(all->at("status").string, "ok");
  EXPECT_EQ(all->at("samples").number, 5.0);
  EXPECT_EQ(all->at("min").number, 3.0);
  EXPECT_EQ(all->at("max").number, 15.0);
  EXPECT_EQ(all->at("last").number, 15.0);
  EXPECT_NEAR(all->at("rate").number, 3.0, 1e-9);

  req.tsdbAgg = "rate";
  const auto rate = wire::parseObject(
      wire::encodeTsdbResponse(store, req, 5 * 1000000000LL), &error);
  ASSERT_TRUE(rate) << error;
  EXPECT_NEAR(rate->at("value").number, 3.0, 1e-9);

  req.tsdbAgg = "raw";
  const auto raw = wire::parseObject(
      wire::encodeTsdbResponse(store, req, 5 * 1000000000LL), &error);
  ASSERT_TRUE(raw) << error;
  EXPECT_EQ(raw->at("body").string,
            "1000000000 3\n2000000000 6\n3000000000 9\n4000000000 12\n"
            "5000000000 15\n");

  // Quantile over an unknown family: defined=false, no NaN in the JSON.
  req.tsdbAgg = "quantile";
  req.tsdbSeries = "nope_ms";
  const auto q = wire::parseObject(
      wire::encodeTsdbResponse(store, req, 5 * 1000000000LL), &error);
  ASSERT_TRUE(q) << error;
  EXPECT_FALSE(q->at("defined").boolean);
  EXPECT_FALSE(q->at("unbounded").boolean);
}

TEST(Wire, EncodeSloStatusUsesFlatKeys) {
  ep::obs::SloEngine::SloStatus s;
  s.name = "p99";
  s.kind = ep::obs::SloSpec::Kind::LatencyQuantile;
  s.burning = true;
  s.worstBurn = 7.25;
  s.raisedCount = 2;
  ep::obs::SloEngine::WindowBurn wb;
  wb.longMs = 3600000;
  wb.shortMs = 300000;
  wb.threshold = 14.4;
  wb.longBurn = 7.25;
  wb.shortBurn = 6.5;
  s.windows.push_back(wb);
  std::string error;
  const auto obj = wire::parseObject(wire::encodeSloStatus({s}), &error);
  ASSERT_TRUE(obj) << error;
  EXPECT_EQ(obj->at("status").string, "ok");
  EXPECT_EQ(obj->at("slos").number, 1.0);
  EXPECT_EQ(obj->at("burning").number, 1.0);
  EXPECT_EQ(obj->at("slo.p99.kind").string, "latency");
  EXPECT_TRUE(obj->at("slo.p99.burning").boolean);
  EXPECT_EQ(obj->at("slo.p99.worstBurn").number, 7.25);
  EXPECT_EQ(obj->at("slo.p99.raised").number, 2.0);
  EXPECT_EQ(obj->at("slo.p99.w0.threshold").number, 14.4);
  EXPECT_EQ(obj->at("slo.p99.w0.longBurn").number, 7.25);
  EXPECT_EQ(obj->at("slo.p99.w0.shortBurn").number, 6.5);
}

// --- EPB1 binary framing corpus (net/frame.hpp + serve/wire_binary) ---

TEST(BinaryFrame, TruncatedLengthPrefixWaitsForMoreBytes) {
  net::FrameDecoder dec(1 << 20);
  std::vector<net::Frame> frames;
  std::string wire(net::kMagic, sizeof net::kMagic);
  ASSERT_TRUE(dec.feed(wire, &frames));
  // A lone continuation byte is an incomplete varint, not an error.
  ASSERT_TRUE(dec.feed(std::string(1, '\x80'), &frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(dec.mode(), net::FrameDecoder::Mode::Binary);
  // Completing the prefix (0x80 0x02 = 256) just starts a frame wait.
  ASSERT_TRUE(dec.feed(std::string(1, '\x02'), &frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_GT(dec.buffered(), 0u);
}

TEST(BinaryFrame, OversizeDeclaredLengthIsRejectedUpFront) {
  // A hostile length prefix past the 1 MiB ceiling must break the
  // connection before any buffer grows to match it.
  const std::size_t kCeiling = std::size_t{1} << 20;
  net::FrameDecoder dec(kCeiling);
  std::vector<net::Frame> frames;
  std::string wire(net::kMagic, sizeof net::kMagic);
  net::putVarint(wire, kCeiling + 1);
  EXPECT_FALSE(dec.feed(wire, &frames));
  EXPECT_EQ(dec.mode(), net::FrameDecoder::Mode::Broken);
  EXPECT_EQ(dec.error(), "frame too large");
  EXPECT_TRUE(frames.empty());
}

TEST(BinaryFrame, MidFrameCloseLosesOnlyThePartialFrame) {
  // One complete frame followed by a frame cut off mid-body (the
  // connection then closes): the complete frame is delivered, the
  // partial one never is, and the decoder is still healthy.
  net::FrameDecoder dec(1 << 20);
  std::vector<net::Frame> frames;
  std::string wire(net::kMagic, sizeof net::kMagic);
  net::appendFrame(wire, net::kOpTune, "whole");
  std::string partial;
  net::appendFrame(partial, net::kOpTune, std::string(100, 'p'));
  wire.append(partial, 0, partial.size() - 60);
  ASSERT_TRUE(dec.feed(wire, &frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "whole");
  EXPECT_GT(dec.buffered(), 0u);
}

TEST(BinaryFrame, WireModeIsStickyForTheConnection) {
  {
    // A JSON connection that later emits the EPB1 magic stays JSON:
    // the magic is just line bytes, never a renegotiation.
    net::FrameDecoder dec(1 << 20);
    std::vector<net::Frame> frames;
    ASSERT_TRUE(dec.feed("{\"op\":\"metrics\"}\nEPB1junk\n", &frames));
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_FALSE(frames[1].binary);
    EXPECT_EQ(frames[1].payload, "EPB1junk");
  }
  {
    // A binary connection fed a bare JSON line never falls back: the
    // '{' byte reads as a 123-byte length and the "frame" it frames is
    // garbage — a protocol error, not a mode switch.
    net::FrameDecoder dec(1 << 20);
    std::vector<net::Frame> frames;
    std::string wire(net::kMagic, sizeof net::kMagic);
    wire += "{\"op\":\"tune\",\"n\":1024}\n";
    wire += std::string(150, 'x');
    EXPECT_FALSE(dec.feed(wire, &frames));
    EXPECT_EQ(dec.mode(), net::FrameDecoder::Mode::Broken);
    EXPECT_EQ(dec.error(), "unknown frame opcode");
  }
}

TEST(WireBinary, TuneRequestRoundTripsEveryField) {
  wire_binary::BinaryTuneRequest req;
  req.tune.device = Device::K40c;
  req.tune.n = 18432;
  req.tune.maxDegradation = 0.07;
  req.tune.deadlineMs = 250.5;
  req.report = true;
  req.deviceAuto = true;
  req.traceId = "0123456789abcdef";
  std::string err;
  const auto back =
      wire_binary::decodeTuneRequest(wire_binary::encodeTuneRequest(req), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->tune.device, Device::K40c);
  EXPECT_EQ(back->tune.n, 18432);
  EXPECT_DOUBLE_EQ(back->tune.maxDegradation, 0.07);
  EXPECT_DOUBLE_EQ(back->tune.deadlineMs, 250.5);
  EXPECT_TRUE(back->report);
  EXPECT_TRUE(back->deviceAuto);
  EXPECT_EQ(back->traceId, "0123456789abcdef");
}

TEST(WireBinary, MalformedTuneRequestsAreRejected) {
  wire_binary::BinaryTuneRequest req;
  req.tune.n = 1024;
  const std::string good = wire_binary::encodeTuneRequest(req);

  // Every truncation point must fail cleanly, never read out of range.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    std::string err;
    EXPECT_FALSE(
        wire_binary::decodeTuneRequest(good.substr(0, cut), &err).has_value())
        << "cut at " << cut;
    EXPECT_EQ(err, "truncated tune request");
  }

  std::string badDevice = good;
  badDevice[0] = '\x02';
  std::string err;
  EXPECT_FALSE(wire_binary::decodeTuneRequest(badDevice, &err).has_value());
  EXPECT_EQ(err, "unknown device");

  wire_binary::BinaryTuneRequest huge;
  huge.tune.n = (1 << 30);  // encoder caps negative, decoder caps huge
  std::string wire = wire_binary::encodeTuneRequest(huge);
  // Patch the n varint (offset 2) from 2^30 to 2^30 + 1.
  EXPECT_TRUE(
      wire_binary::decodeTuneRequest(wire, &err).has_value());  // boundary ok
  wire[2] = static_cast<char>(0x81);
  EXPECT_FALSE(wire_binary::decodeTuneRequest(wire, &err).has_value());
  EXPECT_EQ(err, "workload out of range");
}

TEST(WireBinary, TuneResponseRoundTripsRecommendationAndLedger) {
  TuneResponse resp;
  resp.status = Status::Ok;
  resp.cacheHit = true;
  resp.stale = true;
  resp.latency = Seconds{0.0042};
  resp.recommendation.recommended = mk(1.5, 80.0, 7);
  resp.recommendation.performanceOptimal = mk(1.2, 120.0, 1);
  resp.recommendation.energyOptimal = mk(2.0, 60.0, 9);
  resp.recommendation.knee = mk(1.6, 70.0, 8);
  resp.recommendation.energySavings = 0.33;
  resp.recommendation.performanceDegradation = 0.25;
  resp.recommendation.globalFront = {mk(1.0, 9.0, 0), mk(2.0, 8.0, 1)};
  resp.report.attributedJoules = 123.5;
  resp.report.studiesExecuted = 1;
  resp.report.measurementWindows = 5;

  std::string err;
  const auto back = wire_binary::decodeTuneResponse(
      wire_binary::encodeTuneResponse(resp, "cafe", /*withReport=*/true),
      &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->status, Status::Ok);
  EXPECT_TRUE(back->cacheHit);
  EXPECT_FALSE(back->coalesced);
  EXPECT_TRUE(back->stale);
  EXPECT_EQ(back->traceId, "cafe");
  EXPECT_DOUBLE_EQ(back->latencyMs, 4.2);
  EXPECT_EQ(back->recommended, "cfg7");
  EXPECT_DOUBLE_EQ(back->recommendedTimeS, 1.5);
  EXPECT_DOUBLE_EQ(back->recommendedEnergyJ, 80.0);
  EXPECT_DOUBLE_EQ(back->energySavings, 0.33);
  EXPECT_DOUBLE_EQ(back->performanceDegradation, 0.25);
  EXPECT_EQ(back->performanceOptimal, "cfg1");
  EXPECT_EQ(back->energyOptimal, "cfg9");
  EXPECT_EQ(back->knee, "cfg8");
  EXPECT_EQ(back->frontSize, 2u);
  ASSERT_TRUE(back->hasReport);
  EXPECT_DOUBLE_EQ(back->report.attributedJoules, 123.5);
  EXPECT_EQ(back->report.studiesExecuted, 1u);
  EXPECT_EQ(back->report.measurementWindows, 5u);

  // Truncations of the response body fail cleanly too.
  const std::string good =
      wire_binary::encodeTuneResponse(resp, "cafe", /*withReport=*/true);
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, good.size() / 2,
                          good.size() - 1}) {
    EXPECT_FALSE(
        wire_binary::decodeTuneResponse(good.substr(0, cut), &err).has_value())
        << "cut at " << cut;
  }
}

// --- submitTuneBatch: one lock acquisition for a whole epoll round ---

// Collects batch completions; done() callbacks may run on any thread.
struct BatchCollector {
  explicit BatchCollector(std::size_t n) : responses(n), traceIds(n) {}
  std::vector<TuneResponse> responses;
  std::vector<std::uint64_t> traceIds;  // obs context seen inside done()
  std::vector<std::promise<void>> arrived{};
  std::vector<std::future<void>> futures{};

  Broker::TuneBatchItem item(std::size_t i, TuneRequest req,
                             std::uint64_t traceId = 0) {
    arrived.emplace_back();
    futures.push_back(arrived.back().get_future());
    Broker::TuneBatchItem it;
    it.req = req;
    it.ctx.traceId = traceId;
    it.done = [this, i](TuneResponse&& resp) {
      traceIds[i] = obs::currentContext().traceId;
      responses[i] = std::move(resp);
      arrived[i].set_value();
    };
    return it;
  }
  void waitAll() {
    for (auto& f : futures) f.wait();
  }
};

TEST(BrokerBatch, BatchMatchesSequentialSubmitsFieldForField) {
  // The same request mix — two cold keys, one repeat — through a
  // sequential broker and a batched broker must produce identical
  // responses (admission logic is shared verbatim by both paths).
  const std::vector<TuneRequest> mix = {tuneReq(100), tuneReq(200),
                                        tuneReq(100)};

  auto engineSeq = std::make_shared<FakeEngine>();
  Broker sequential(engineSeq, BrokerOptions{});
  std::vector<TuneResponse> seqResponses;
  for (const auto& r : mix) seqResponses.push_back(sequential.tune(r));

  auto engineBatch = std::make_shared<FakeEngine>();
  Broker batched(engineBatch, BrokerOptions{});
  BatchCollector collect(mix.size());
  std::vector<Broker::TuneBatchItem> items;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    items.push_back(collect.item(i, mix[i]));
  }
  batched.submitTuneBatch(std::move(items));
  collect.waitAll();

  EXPECT_EQ(engineBatch->calls(), engineSeq->calls());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const TuneResponse& a = seqResponses[i];
    const TuneResponse& b = collect.responses[i];
    EXPECT_EQ(a.status, b.status) << "item " << i;
    EXPECT_EQ(a.cacheHit, b.cacheHit) << "item " << i;
    EXPECT_EQ(a.stale, b.stale) << "item " << i;
    EXPECT_EQ(a.recommendation.recommended.configId,
              b.recommendation.recommended.configId)
        << "item " << i;
    EXPECT_EQ(a.recommendation.recommended.label,
              b.recommendation.recommended.label);
    EXPECT_DOUBLE_EQ(a.recommendation.recommended.time.value(),
                     b.recommendation.recommended.time.value());
    EXPECT_DOUBLE_EQ(a.recommendation.recommended.energy.value(),
                     b.recommendation.recommended.energy.value());
    EXPECT_DOUBLE_EQ(a.recommendation.energySavings,
                     b.recommendation.energySavings);
  }
  // Same totals on the metrics surface, minus the latency values.
  const ServeMetrics ms = sequential.metrics();
  const ServeMetrics mb = batched.metrics();
  EXPECT_EQ(ms.completed, mb.completed);
  EXPECT_EQ(ms.cacheHits, mb.cacheHits);
  EXPECT_EQ(ms.studiesExecuted, mb.studiesExecuted);
}

TEST(BrokerBatch, BackpressureAndCoalescingApplyPerBatchMember) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 1;
  opts.queueCapacity = 1;
  Broker broker(engine, opts);

  auto blocker = broker.submitTune(tuneReq(1));
  engine->waitEntered();  // lone worker stuck; queue empty

  // One batch: member 0 coalesces onto the in-flight study, member 1
  // takes the only queue slot, member 2 bounces with backpressure.
  BatchCollector collect(3);
  std::vector<Broker::TuneBatchItem> items;
  items.push_back(collect.item(0, tuneReq(1)));
  items.push_back(collect.item(1, tuneReq(2)));
  items.push_back(collect.item(2, tuneReq(3)));
  broker.submitTuneBatch(std::move(items));

  // Rejection is decided at admission, before any study finishes.
  collect.futures[2].wait();
  EXPECT_EQ(collect.responses[2].status, Status::QueueFull);

  engine->release();
  EXPECT_EQ(blocker.get().status, Status::Ok);
  collect.waitAll();
  EXPECT_EQ(collect.responses[0].status, Status::Ok);
  EXPECT_TRUE(collect.responses[0].coalesced);
  EXPECT_EQ(collect.responses[1].status, Status::Ok);
  EXPECT_FALSE(collect.responses[1].coalesced);

  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.coalesced, 1u);
  EXPECT_EQ(m.rejectedQueueFull, 1u);
  EXPECT_EQ(m.completed, 3u);
}

TEST(BrokerBatch, ExpiredBatchMemberIsRejectedAtExecution) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  BrokerOptions opts;
  opts.threads = 1;
  opts.queueCapacity = 8;
  Broker broker(engine, opts);

  auto blocker = broker.submitTune(tuneReq(1));
  engine->waitEntered();

  BatchCollector collect(2);
  std::vector<Broker::TuneBatchItem> items;
  items.push_back(collect.item(0, tuneReq(2, 0.5, /*deadlineMs=*/5.0)));
  items.push_back(collect.item(1, tuneReq(3)));  // no deadline
  broker.submitTuneBatch(std::move(items));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine->release();

  EXPECT_EQ(blocker.get().status, Status::Ok);
  collect.waitAll();
  EXPECT_EQ(collect.responses[0].status, Status::DeadlineExceeded);
  EXPECT_EQ(collect.responses[1].status, Status::Ok);
  EXPECT_EQ(broker.metrics().rejectedDeadline, 1u);
}

TEST(BrokerBatch, TraceContextsDoNotCrossContaminate) {
  // Every done() must observe ITS item's trace context, even though
  // all queued members of a batch execute inside one pool task.
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);
  (void)broker.tune(tuneReq(300));  // warm one key: mix hit + cold paths

  BatchCollector collect(3);
  std::vector<Broker::TuneBatchItem> items;
  items.push_back(collect.item(0, tuneReq(100), /*traceId=*/0xAAA1u));
  items.push_back(collect.item(1, tuneReq(200), /*traceId=*/0xBBB2u));
  items.push_back(collect.item(2, tuneReq(300), /*traceId=*/0xCCC3u));
  broker.submitTuneBatch(std::move(items));
  collect.waitAll();

  EXPECT_EQ(collect.responses[0].status, Status::Ok);
  EXPECT_EQ(collect.responses[1].status, Status::Ok);
  EXPECT_EQ(collect.responses[2].status, Status::Ok);
  EXPECT_TRUE(collect.responses[2].cacheHit);
  EXPECT_EQ(collect.traceIds[0], 0xAAA1u);
  EXPECT_EQ(collect.traceIds[1], 0xBBB2u);
  EXPECT_EQ(collect.traceIds[2], 0xCCC3u);
}

// --- circuit breaker state machine (synthetic time, no sleeping) ---

TEST(CircuitBreaker, DisabledBreakerNeverTrips) {
  CircuitBreaker b;  // failureThreshold = 0: opt-in off
  const Clock::time_point t0{};
  for (int i = 0; i < 10; ++i) b.onFailure(t0);
  EXPECT_EQ(b.state(t0), CircuitBreaker::State::Closed);
  EXPECT_TRUE(b.allow(t0));
  EXPECT_FALSE(b.wouldReject(t0));
  EXPECT_EQ(b.opens(), 0u);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreakerOptions o;
  o.failureThreshold = 3;
  o.openMs = 1000.0;
  CircuitBreaker b(o);
  const Clock::time_point t0{};
  b.onFailure(t0);
  b.onFailure(t0);
  EXPECT_EQ(b.state(t0), CircuitBreaker::State::Closed);
  EXPECT_TRUE(b.allow(t0));
  b.onFailure(t0);
  EXPECT_EQ(b.state(t0), CircuitBreaker::State::Open);
  EXPECT_EQ(b.opens(), 1u);
  EXPECT_FALSE(b.allow(t0));
  EXPECT_TRUE(b.wouldReject(t0 + std::chrono::milliseconds(999)));
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreakerOptions o;
  o.failureThreshold = 2;
  CircuitBreaker b(o);
  const Clock::time_point t0{};
  b.onFailure(t0);
  b.onSuccess();  // an intervening success: failures are not consecutive
  b.onFailure(t0);
  EXPECT_EQ(b.state(t0), CircuitBreaker::State::Closed);
  b.onFailure(t0);
  EXPECT_EQ(b.state(t0), CircuitBreaker::State::Open);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  CircuitBreakerOptions o;
  o.failureThreshold = 1;
  o.openMs = 1000.0;
  o.halfOpenProbes = 1;
  CircuitBreaker b(o);
  const Clock::time_point t0{};
  b.onFailure(t0);
  const auto t1 = t0 + std::chrono::milliseconds(1001);
  EXPECT_EQ(b.state(t1), CircuitBreaker::State::HalfOpen);
  EXPECT_TRUE(b.allow(t1));   // claims the single probe slot
  EXPECT_FALSE(b.allow(t1));  // probe budget exhausted until it reports
  b.onSuccess();
  EXPECT_EQ(b.state(t1), CircuitBreaker::State::Closed);
  EXPECT_TRUE(b.allow(t1));
  EXPECT_EQ(b.opens(), 1u);
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens) {
  CircuitBreakerOptions o;
  o.failureThreshold = 1;
  o.openMs = 1000.0;
  CircuitBreaker b(o);
  const Clock::time_point t0{};
  b.onFailure(t0);
  const auto t1 = t0 + std::chrono::milliseconds(1001);
  ASSERT_TRUE(b.allow(t1));
  b.onFailure(t1);  // the probe failed: a fresh open window starts at t1
  EXPECT_EQ(b.opens(), 2u);
  EXPECT_EQ(b.state(t1 + std::chrono::milliseconds(999)),
            CircuitBreaker::State::Open);
  EXPECT_EQ(b.state(t1 + std::chrono::milliseconds(1001)),
            CircuitBreaker::State::HalfOpen);
}

TEST(CircuitBreaker, WouldRejectNeverClaimsProbeSlots) {
  CircuitBreakerOptions o;
  o.failureThreshold = 1;
  o.openMs = 1000.0;
  o.halfOpenProbes = 1;
  CircuitBreaker b(o);
  const Clock::time_point t0{};
  b.onFailure(t0);
  const auto t1 = t0 + std::chrono::milliseconds(1001);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(b.wouldReject(t1));
  EXPECT_TRUE(b.allow(t1));  // the probe is still available
}

// --- breaker + stale-while-error through the broker ---

TEST(Broker, BreakerOpensAfterRepeatedEngineFailures) {
  auto engine = std::make_shared<FakeEngine>();
  engine->failAlways();
  BrokerOptions opts;
  opts.threads = 1;
  opts.breaker.failureThreshold = 2;
  opts.breaker.openMs = 60'000.0;  // stays open for the whole test
  opts.staleCapacity = 0;          // no fallback: rejection is visible
  Broker broker(engine, opts);

  EXPECT_EQ(broker.tune(tuneReq(1)).status, Status::Error);
  EXPECT_EQ(broker.tune(tuneReq(2)).status, Status::Error);
  // The breaker is now open: fail fast without touching the engine.
  const int callsBefore = engine->calls();
  EXPECT_EQ(broker.tune(tuneReq(3)).status, Status::CircuitOpen);
  EXPECT_EQ(engine->calls(), callsBefore);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.failed, 2u);
  EXPECT_EQ(m.breakerOpens, 1u);
  EXPECT_EQ(m.rejectedCircuitOpen, 1u);
}

TEST(Broker, BreakersAreIndependentPerDevice) {
  auto engine = std::make_shared<FakeEngine>();
  engine->failAlways();
  BrokerOptions opts;
  opts.threads = 1;
  opts.breaker.failureThreshold = 1;
  opts.breaker.openMs = 60'000.0;
  opts.staleCapacity = 0;
  Broker broker(engine, opts);

  ASSERT_EQ(broker.tune(tuneReq(1, 0.5, 0.0, Device::K40c)).status,
            Status::Error);
  EXPECT_EQ(broker.tune(tuneReq(2, 0.5, 0.0, Device::K40c)).status,
            Status::CircuitOpen);
  // P100 traffic still reaches the engine.
  engine->failAlways(false);
  EXPECT_EQ(broker.tune(tuneReq(3, 0.5, 0.0, Device::P100)).status,
            Status::Ok);
}

TEST(Broker, StaleResultServedWhenTheEngineFails) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 1;
  opts.cacheCapacity = 1;  // force eviction: the stale path is only
                           // reachable past the result cache
  opts.staleCapacity = 8;
  Broker broker(engine, opts);

  const TuneResponse good = broker.tune(tuneReq(1));
  ASSERT_EQ(good.status, Status::Ok);
  ASSERT_EQ(broker.tune(tuneReq(2)).status, Status::Ok);  // evicts N=1

  engine->failAlways();
  const TuneResponse stale = broker.tune(tuneReq(1));
  ASSERT_EQ(stale.status, Status::Ok);
  EXPECT_TRUE(stale.stale);
  EXPECT_FALSE(stale.cacheHit);
  EXPECT_EQ(stale.recommendation.recommended.configId,
            good.recommendation.recommended.configId);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.staleServed, 1u);
  EXPECT_EQ(m.failed, 0u);  // stale-while-error is a success to the caller
}

TEST(Broker, OpenBreakerServesStaleAndRejectsUnknownKeys) {
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 1;
  opts.cacheCapacity = 1;
  opts.staleCapacity = 8;
  opts.breaker.failureThreshold = 1;
  opts.breaker.openMs = 60'000.0;
  Broker broker(engine, opts);

  ASSERT_EQ(broker.tune(tuneReq(1)).status, Status::Ok);
  ASSERT_EQ(broker.tune(tuneReq(2)).status, Status::Ok);  // evicts N=1
  engine->failAlways();
  ASSERT_EQ(broker.tune(tuneReq(3)).status, Status::Error);  // trips it

  const int callsBefore = engine->calls();
  const TuneResponse stale = broker.tune(tuneReq(1));
  EXPECT_EQ(stale.status, Status::Ok);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(broker.tune(tuneReq(4)).status, Status::CircuitOpen);
  EXPECT_EQ(engine->calls(), callsBefore);  // both answered at admission
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.staleServed, 1u);
  EXPECT_EQ(m.rejectedCircuitOpen, 1u);
  EXPECT_EQ(m.breakerOpens, 1u);
}

TEST(Broker, ShutdownDrainsWithAFailureInFlight) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  engine->failOn(1);
  BrokerOptions opts;
  opts.threads = 1;
  opts.queueCapacity = 8;
  Broker broker(engine, opts);

  auto failing = broker.submitTune(tuneReq(1));
  engine->waitEntered();
  auto queued = broker.submitTune(tuneReq(2));

  std::thread closer([&] { broker.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine->release();
  closer.join();

  // Drained: the failure is reported, the queued job still ran.
  EXPECT_EQ(failing.get().status, Status::Error);
  EXPECT_EQ(queued.get().status, Status::Ok);
  EXPECT_EQ(broker.tune(tuneReq(3)).status, Status::ShuttingDown);
}

TEST(Broker, DeadlineAndBreakerRacesResolveEveryRequest) {
  // A short open window keeps the breaker flapping between Open and
  // HalfOpen while deadlines expire in the queue — every future must
  // still resolve with a definite status and the admission identity
  // must hold (the snapshot ordering is TSan-verified in CI).
  auto engine = std::make_shared<FakeEngine>();
  engine->failAlways();
  BrokerOptions opts;
  opts.threads = 4;
  opts.queueCapacity = 128;
  opts.breaker.failureThreshold = 3;
  opts.breaker.openMs = 1.0;
  opts.staleCapacity = 0;
  Broker broker(engine, opts);

  std::vector<std::future<TuneResponse>> futures;
  for (int i = 0; i < 60; ++i) {
    const double deadlineMs = (i % 3 == 0) ? 0.01 : 0.0;
    futures.push_back(broker.submitTune(tuneReq(i % 8 + 1, 0.5, deadlineMs)));
  }
  for (auto& f : futures) {
    const Status s = f.get().status;
    EXPECT_TRUE(s == Status::Error || s == Status::CircuitOpen ||
                s == Status::DeadlineExceeded)
        << "status " << static_cast<int>(s);
  }
  const ServeMetrics m = broker.metrics();
  EXPECT_LE(m.completed + m.failed + m.rejectedDeadline, m.accepted);
  EXPECT_EQ(m.completed, 0u);  // a failing engine never produces Ok
  EXPECT_EQ(m.queueDepth, 0u);
  EXPECT_EQ(m.inFlightStudies, 0u);
}

// --- adaptive admission (epchaos overload control) ---

// A controllable time source: BrokerOptions.clock routes every
// deadline, latency and AIMD observation through it, so overload and
// recovery scenarios run deterministically with no real sleeping.
struct FakeClock {
  std::atomic<std::int64_t> ns{0};
  void advanceMs(double ms) {
    ns.fetch_add(static_cast<std::int64_t>(ms * 1e6));
  }
  std::function<Clock::time_point()> fn() {
    return [this] { return Clock::time_point(Clock::duration(ns.load())); };
  }
};

TEST(Admission, OverflowFastFailsOverloadedWhileAdmittedWorkCompletes) {
  // 2x sustained overload: 8 distinct cold keys offered against an
  // admission limit of 4.  The overflow must fast-fail Overloaded
  // without queueing; every admitted request must complete with
  // latency inside the SLO target (the p99-of-admitted pin).
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  FakeClock clock;
  BrokerOptions opts;
  opts.threads = 2;
  opts.queueCapacity = 32;
  opts.clock = clock.fn();
  opts.admission.enabled = true;
  opts.admission.targetLatencyMs = 50.0;
  opts.admission.initialLimit = 4;
  opts.admission.minLimit = 1;
  opts.admission.maxLimit = 4;
  Broker broker(engine, opts);

  std::vector<std::future<TuneResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    TuneRequest req;
    req.device = Device::P100;
    req.n = 100 + i;
    futures.push_back(broker.submitTune(req));
  }
  // The 4 rejections are inline: their futures are ready while both
  // workers are still parked inside the gated engine.
  int fastFailed = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      ++fastFailed;
    }
  }
  EXPECT_EQ(fastFailed, 4);
  clock.advanceMs(49.0);  // queueing time, still inside the target
  engine->release();
  int ok = 0;
  int overloaded = 0;
  double maxLatencyMs = 0.0;
  for (auto& f : futures) {
    const TuneResponse resp = f.get();
    if (resp.status == Status::Ok) {
      ++ok;
      maxLatencyMs = std::max(maxLatencyMs, resp.latency.value() * 1e3);
    } else {
      ASSERT_EQ(resp.status, Status::Overloaded);
      ++overloaded;
    }
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(overloaded, 4);
  EXPECT_LE(maxLatencyMs, opts.admission.targetLatencyMs);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.rejectedOverload, 4u);
  EXPECT_EQ(m.rejectedQueueFull, 0u);  // shed at admission, not the queue
  broker.shutdown();
}

TEST(Admission, AimdHalvesOnOverTargetLatencyAndGrowsBack) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  FakeClock clock;
  BrokerOptions opts;
  opts.threads = 1;
  opts.clock = clock.fn();
  opts.admission.enabled = true;
  opts.admission.targetLatencyMs = 50.0;
  opts.admission.initialLimit = 8;
  opts.admission.minLimit = 1;
  opts.admission.maxLimit = 16;
  Broker broker(engine, opts);
  EXPECT_EQ(broker.metrics().admissionLimit, 8u);

  // One over-target completion (100 ms against a 50 ms target)
  // multiplicatively halves the limit.
  TuneRequest req;
  req.device = Device::P100;
  req.n = 42;
  auto slow = broker.submitTune(req);
  engine->waitEntered(1);
  clock.advanceMs(100.0);
  engine->release();
  EXPECT_EQ(slow.get().status, Status::Ok);
  EXPECT_EQ(broker.metrics().admissionLimit, 4u);

  // In-target completions additively re-open it (fractional increase:
  // ~1 slot per `limit` completions).
  for (int i = 0; i < 40; ++i) {
    TuneRequest r;
    r.device = Device::P100;
    r.n = 1000 + i;
    EXPECT_EQ(broker.submitTune(r).get().status, Status::Ok);
  }
  EXPECT_GT(broker.metrics().admissionLimit, 4u);
  broker.shutdown();
}

TEST(Admission, DeadlineInfeasibleColdRequestsShedAtAdmission) {
  auto engine = std::make_shared<FakeEngine>(/*gated=*/true);
  FakeClock clock;
  BrokerOptions opts;
  opts.threads = 1;
  opts.clock = clock.fn();
  opts.admission.enabled = true;
  opts.admission.initialLimit = 8;
  Broker broker(engine, opts);

  // Teach the EWMA cost model that a cold study takes ~80 ms.
  TuneRequest first;
  first.device = Device::P100;
  first.n = 7;
  auto f = broker.submitTune(first);
  engine->waitEntered(1);
  clock.advanceMs(80.0);
  engine->release();
  EXPECT_EQ(f.get().status, Status::Ok);
  const int callsAfterWarm = engine->calls();

  // An uncached request with a 10 ms deadline cannot cover that cost:
  // it must be refused at admission without burning any pool time.
  TuneRequest doomed;
  doomed.device = Device::P100;
  doomed.n = 8;
  doomed.deadlineMs = 10.0;
  const TuneResponse resp = broker.submitTune(doomed).get();
  EXPECT_EQ(resp.status, Status::DeadlineExceeded);
  EXPECT_EQ(engine->calls(), callsAfterWarm);
  EXPECT_EQ(broker.metrics().shedDeadline, 1u);

  // A feasible deadline still goes through.
  TuneRequest fine;
  fine.device = Device::P100;
  fine.n = 9;
  fine.deadlineMs = 500.0;
  EXPECT_EQ(broker.submitTune(fine).get().status, Status::Ok);
  broker.shutdown();
}

TEST(Admission, DisabledAdmissionNeverRejectsOverloaded) {
  // Chaos off => the admission branch is never taken; behaviour (and
  // the metrics surface) matches a pre-epchaos broker.
  auto engine = std::make_shared<FakeEngine>();
  BrokerOptions opts;
  opts.threads = 2;
  Broker broker(engine, opts);
  std::vector<std::future<TuneResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    TuneRequest req;
    req.device = Device::P100;
    req.n = 3000 + i;
    futures.push_back(broker.submitTune(req));
  }
  for (auto& f : futures) EXPECT_NE(f.get().status, Status::Overloaded);
  const ServeMetrics m = broker.metrics();
  EXPECT_EQ(m.rejectedOverload, 0u);
  EXPECT_EQ(m.shedDeadline, 0u);
  EXPECT_EQ(m.admissionLimit, 0u);  // gauge reads 0 when disabled
  broker.shutdown();
}

}  // namespace
}  // namespace ep::serve
