// Unit tests for the epcommon library: units, error handling, RNG,
// tables, thread pool, math helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace ep {
namespace {

using namespace ep::literals;

// --- units ---

TEST(Units, AdditionAndSubtraction) {
  const Joules e = 3.0_J + 4.5_J;
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
  EXPECT_DOUBLE_EQ((e - 2.5_J).value(), 5.0);
}

TEST(Units, ScalarScaling) {
  EXPECT_DOUBLE_EQ((2.0 * 3.0_W).value(), 6.0);
  EXPECT_DOUBLE_EQ((3.0_W * 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((6.0_W / 2.0).value(), 3.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = 10.0_W * 3.0_s;
  EXPECT_DOUBLE_EQ(e.value(), 30.0);
  EXPECT_DOUBLE_EQ((3.0_s * 10.0_W).value(), 30.0);
}

TEST(Units, EnergyDividedByTimeIsPower) {
  const Watts p = 30.0_J / 3.0_s;
  EXPECT_DOUBLE_EQ(p.value(), 10.0);
}

TEST(Units, EnergyDividedByPowerIsTime) {
  const Seconds t = 30.0_J / 10.0_W;
  EXPECT_DOUBLE_EQ(t.value(), 3.0);
}

TEST(Units, RatioOfLikeUnitsIsDimensionless) {
  const double r = 30.0_J / 10.0_J;
  EXPECT_DOUBLE_EQ(r, 3.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(1.0_s, 2.0_s);
  EXPECT_GT(2.0_W, 1.0_W);
  EXPECT_EQ(1.0_J, 1.0_J);
  EXPECT_LE(1.0_J, 1.0_J);
}

TEST(Units, CompoundAssignment) {
  Joules e = 1.0_J;
  e += 2.0_J;
  e -= 0.5_J;
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Units, Negation) { EXPECT_DOUBLE_EQ((-(2.0_J)).value(), -2.0); }

TEST(Units, StreamOutput) {
  std::ostringstream ss;
  ss << 2.5_W;
  EXPECT_EQ(ss.str(), "2.5 W");
}

TEST(Units, MillisecondLiteral) {
  EXPECT_DOUBLE_EQ((250.0_ms).value(), 0.25);
}

// --- error ---

TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(EP_REQUIRE(false, "boom"), PreconditionError);
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(EP_REQUIRE(true, "fine"));
}

TEST(Error, MessageContainsExpressionAndDetail) {
  try {
    EP_REQUIRE(1 == 2, "details here");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("details here"), std::string::npos);
  }
}

TEST(Error, HierarchyCatchableAsEpError) {
  EXPECT_THROW(throw ConvergenceError("x"), EpError);
  EXPECT_THROW(throw ResourceError("x"), EpError);
  EXPECT_THROW(throw PreconditionError("x"), EpError);
}

// --- rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  bool anyDifferent = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniformInt(1, 6);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 6u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);  // all die faces appear in 1000 rolls
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng(11);
  double sum = 0.0, sumSq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumSq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  // Identical salt gives identical stream; different salts differ.
  Rng a2 = parent.fork(1);
  EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), a2.uniform(0.0, 1.0));
  bool anyDifferent = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, Splitmix64ProducesDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(splitmix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

// --- table ---

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"beta", "2"});
  EXPECT_EQ(t.rowCount(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({std::string("only-one")}), PreconditionError);
}

TEST(Table, NumericRowsUsePrecision) {
  Table t({"x"});
  t.setPrecision(2);
  t.addRow({3.14159});
  EXPECT_NE(t.str().find("3.14"), std::string::npos);
}

TEST(Table, CsvEscapesSeparators) {
  Table t({"a"});
  t.addRow({std::string("x,y")});
  std::ostringstream ss;
  t.writeCsv(ss);
  EXPECT_NE(ss.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, TitleAppearsInOutput) {
  Table t({"a"});
  t.setTitle("My Table");
  t.addRow({1.0});
  EXPECT_NE(t.str().find("My Table"), std::string::npos);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(formatDouble(1.5, 4), "1.5");
  EXPECT_EQ(formatDouble(2.0, 4), "2.0");
}

TEST(FormatDouble, UsesScientificForExtremes) {
  const std::string big = formatDouble(1.23e12, 3);
  EXPECT_NE(big.find('e'), std::string::npos);
  const std::string small = formatDouble(1.23e-7, 3);
  EXPECT_NE(small.find('e'), std::string::npos);
}

// --- thread pool ---

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(0, 257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallelFor(5, 5, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 50) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  SUCCEED();
}

TEST(ThreadPool, MoreChunksThanThreadsStillCovers) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallelFor(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, QueueDepthAndInFlightObservable) {
  obs::Counter& tasks = obs::Registry::global().counter(
      "ep_threadpool_tasks_total", "Tasks executed by all thread pools");
  const std::uint64_t tasksBefore = tasks.value();

  ThreadPool pool(1);
  EXPECT_EQ(pool.queueDepth(), 0u);
  EXPECT_EQ(pool.inFlight(), 0u);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // blocker is now running
  for (int i = 0; i < 3; ++i) {
    pool.submit([gate] { gate.wait(); });
  }
  // inFlight counts queued + running: the blocker plus three queued.
  EXPECT_EQ(pool.queueDepth(), 3u);
  EXPECT_EQ(pool.inFlight(), 4u);

  release.set_value();
  pool.wait();
  EXPECT_EQ(pool.queueDepth(), 0u);
  EXPECT_EQ(pool.inFlight(), 0u);
  EXPECT_EQ(tasks.value(), tasksBefore + 4);
}

TEST(ThreadPool, NestedParallelForFromPoolTaskCompletes) {
  // The old parallelFor waited on the pool's *global* task count, so a
  // parallelFor issued from inside a pool task waited on itself: with
  // one worker this deadlocked deterministically.  The per-call latch
  // plus caller participation must finish the inner loop regardless.
  ThreadPool pool(1);
  std::atomic<std::size_t> inner{0};
  std::promise<void> outerDone;
  pool.submit([&] {
    pool.parallelFor(0, 64, [&](std::size_t) { inner.fetch_add(1); });
    outerDone.set_value();
  });
  auto fut = outerDone.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(inner.load(), 64u);
}

TEST(ThreadPool, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<std::size_t> leaves{0};
  pool.parallelFor(0, 4, [&](std::size_t) {
    pool.parallelFor(0, 4, [&](std::size_t) {
      pool.parallelFor(0, 4, [&](std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 64u);
}

TEST(ThreadPool, ConcurrentParallelForCallsDoNotInterfere) {
  ThreadPool pool(4);
  std::atomic<std::size_t> a{0};
  std::atomic<std::size_t> b{0};
  std::thread other(
      [&] { pool.parallelFor(0, 500, [&](std::size_t) { a.fetch_add(1); }); });
  pool.parallelFor(0, 500, [&](std::size_t) { b.fetch_add(1); });
  other.join();
  EXPECT_EQ(a.load(), 500u);
  EXPECT_EQ(b.load(), 500u);
}

TEST(ThreadPool, SerialPathShortCircuitsAfterFirstError) {
  // grain >= n forces the single-chunk inline path: the throw at i == 0
  // must skip every later index, not just propagate at the end.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallelFor(
                   0, 100,
                   [&](std::size_t i) {
                     if (i == 0) throw std::invalid_argument("first");
                     executed.fetch_add(1);
                   },
                   /*grain=*/100),
               std::invalid_argument);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPool, ParallelPathShortCircuitsAndKeepsFirstError) {
  // Occupy the only worker so the caller claims every chunk in order;
  // the failure at chunk 0 must skip all later chunks and the error
  // that propagates is the first one recorded.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.submit([gate] { gate.wait(); });

  std::atomic<int> executed{0};
  try {
    pool.parallelFor(
        0, 64,
        [&](std::size_t i) {
          if (i == 0) throw std::out_of_range("chunk0");
          executed.fetch_add(1);
        },
        /*grain=*/8);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "chunk0");
  }
  EXPECT_EQ(executed.load(), 0);
  release.set_value();
  pool.wait();
}

TEST(ThreadPool, ExplicitGrainCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  for (std::size_t grain : {1u, 3u, 7u, 50u, 1000u}) {
    std::vector<std::atomic<int>> hits(101);
    pool.parallelFor(
        3, 104, [&](std::size_t i) { hits[i - 3].fetch_add(1); }, grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out =
      pool.parallelMap<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelMapFromPoolTask) {
  ThreadPool pool(2);
  std::promise<std::size_t> sum;
  pool.submit([&] {
    const auto v =
        pool.parallelMap<std::size_t>(100, [](std::size_t i) { return i; });
    std::size_t s = 0;
    for (std::size_t x : v) s += x;
    sum.set_value(s);
  });
  auto fut = sum.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(fut.get(), 4950u);
}

// --- mathutil ---

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(1024));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(1023));
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 5), 2u);
  EXPECT_EQ(ceilDiv(11, 5), 3u);
  EXPECT_EQ(ceilDiv(1, 32), 1u);
}

TEST(MathUtil, Linspace) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(MathUtil, LinspaceSinglePoint) {
  const auto xs = linspace(3.0, 9.0, 1);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_DOUBLE_EQ(xs[0], 3.0);
}

TEST(MathUtil, DivisorsOf) {
  EXPECT_EQ(divisorsOf(12), (std::vector<std::uint64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisorsOf(1), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(divisorsOf(16), (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(divisorsOf(7), (std::vector<std::uint64_t>{1, 7}));
}

TEST(MathUtil, ClampFinite) {
  EXPECT_DOUBLE_EQ(clampFinite(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(clampFinite(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clampFinite(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clampFinite(std::nan(""), 0.25, 1.0), 0.25);
}

TEST(MathUtil, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relativeDifference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relativeDifference(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relativeDifference(2.0, 1.0), 0.5);
}

TEST(MathUtil, KahanSumBeatsNaiveOnSmallAddends) {
  std::vector<double> xs(1000000, 1e-10);
  xs.push_back(1e10);
  const double sum = kahanSum(xs);
  EXPECT_NEAR(sum, 1e10 + 1e-4, 1e-6);
}

}  // namespace
}  // namespace ep
