// epobs: metrics registry semantics, Prometheus exposition, span
// tracing and Chrome trace-event export.
//
// The trace-export schema test deliberately reuses the serve wire
// parser: epobs emits flat event objects precisely so the in-tree
// dependency-free JSON parser can validate them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_export.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"
#include "serve/wire.hpp"

namespace {

using ep::obs::Counter;
using ep::obs::DoubleCounter;
using ep::obs::ExpositionFormat;
using ep::obs::FamilySnapshot;
using ep::obs::FlightEvent;
using ep::obs::FlightRecorder;
using ep::obs::Gauge;
using ep::obs::Histogram;
using ep::obs::Labels;
using ep::obs::MetricKind;
using ep::obs::Registry;
using ep::obs::RegistrySnapshot;
using ep::obs::ScopedTraceContext;
using ep::obs::Scraper;
using ep::obs::SeriesSnapshot;
using ep::obs::SloEngine;
using ep::obs::SloSpec;
using ep::obs::Span;
using ep::obs::TimeSeriesStore;
using ep::obs::TraceContext;
using ep::obs::TraceEvent;
using ep::obs::Tracer;

using ep::obs::ProfileEntry;
using ep::obs::ProfileFrame;
using ep::obs::ProfileKind;
using ep::obs::Profiler;
using ep::obs::ProfilerOptions;
using ep::obs::ProfileSnapshot;
using ep::obs::ProfileThreadLabel;
using ep::obs::TraceSlice;

// ---------------------------------------------------------------------------
// Registry

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Registry r;
  Counter& c = r.counter("test_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetAddSub) {
  Registry r;
  Gauge& g = r.gauge("test_gauge", "help");
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

TEST(Metrics, RegistrationIsIdempotent) {
  Registry r;
  Counter& a = r.counter("same_total", "help");
  Counter& b = r.counter("same_total", "help");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);

  Histogram& h1 = r.histogram("same_hist", "help", {1.0, 2.0});
  Histogram& h2 = r.histogram("same_hist", "help", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, KindConflictThrows) {
  Registry r;
  r.counter("name_total", "help");
  EXPECT_THROW(r.gauge("name_total", "help"), std::invalid_argument);
  EXPECT_THROW(r.histogram("name_total", "help", {1.0}),
               std::invalid_argument);
}

TEST(Metrics, HistogramBoundsConflictThrows) {
  Registry r;
  r.histogram("h", "help", {1.0, 2.0});
  EXPECT_THROW(r.histogram("h", "help", {1.0, 3.0}), std::invalid_argument);
}

TEST(Metrics, InvalidNamesThrow) {
  Registry r;
  EXPECT_THROW(r.counter("", "help"), std::invalid_argument);
  EXPECT_THROW(r.counter("9starts_with_digit", "help"),
               std::invalid_argument);
  EXPECT_THROW(r.counter("has space", "help"), std::invalid_argument);
  EXPECT_THROW(r.counter("has-dash", "help"), std::invalid_argument);
  // The full Prometheus grammar, including colons, is accepted.
  EXPECT_NO_THROW(r.counter("ns:sub_system_total", "help"));
}

TEST(Metrics, HistogramBucketsAndSum) {
  Registry r;
  Histogram& h = r.histogram("lat_ms", "help", {1.0, 10.0});
  EXPECT_THROW(r.histogram("bad", "help", {2.0, 2.0}),
               std::invalid_argument);

  h.observe(0.5);   // bucket 0 (le 1.0)
  h.observe(1.0);   // bucket 0: le is inclusive
  h.observe(5.0);   // bucket 1 (le 10.0)
  h.observe(100.0); // +Inf bucket
  EXPECT_EQ(h.bucketValue(0), 2u);
  EXPECT_EQ(h.bucketValue(1), 1u);
  EXPECT_EQ(h.bucketValue(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 106.5, 1e-9);
  EXPECT_THROW((void)h.bucketValue(3), std::invalid_argument);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Registry r;
  Counter& c = r.counter("conc_total", "help");
  Histogram& h = r.histogram("conc_hist", "help", {10.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_NEAR(h.sum(), static_cast<double>(kThreads) * kIters, 1e-6);
}

// Line-level validation of the Prometheus text exposition: every line
// is a comment or `name[{le="bound"}] value`, histograms cumulative.
TEST(Metrics, RenderPrometheusIsWellFormed) {
  Registry r;
  Counter& c = r.counter("req_total", "Requests seen");
  Gauge& g = r.gauge("depth", "Queue depth");
  Histogram& h = r.histogram("lat_ms", "Latency", {1.0, 10.0});
  c.inc(3);
  g.set(-2);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const std::string text = r.renderPrometheus();
  EXPECT_NE(text.find("# HELP req_total Requests seen\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram\n"), std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3\n"), std::string::npos);

  // Structural pass over every line.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "exposition must end with newline";
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    // Value parses as a number.
    std::size_t parsed = 0;
    EXPECT_NO_THROW({ (void)std::stod(value, &parsed); }) << line;
    EXPECT_EQ(parsed, value.size()) << line;
  }
}

// ---------------------------------------------------------------------------
// Labels, DoubleCounter, and exposition-format conformance

TEST(Metrics, LabeledChildrenShareOneFamilyHeader) {
  Registry r;
  Counter& p100 = r.counter("dev_total", "Per-device ops",
                            {{"device", "P100"}});
  Counter& k40c = r.counter("dev_total", "Per-device ops",
                            {{"device", "K40c"}});
  EXPECT_NE(&p100, &k40c);
  // Same name + same labels is the same child.
  EXPECT_EQ(&p100, &r.counter("dev_total", "Per-device ops",
                              {{"device", "P100"}}));
  p100.inc(2);
  k40c.inc(5);

  const std::string text = r.renderPrometheus();
  // HELP/TYPE once, then both children.
  EXPECT_EQ(text.find("# HELP dev_total"), text.rfind("# HELP dev_total"));
  EXPECT_NE(text.find("dev_total{device=\"P100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("dev_total{device=\"K40c\"} 5\n"), std::string::npos);
}

TEST(Metrics, LabelValuesAreEscapedPerExpositionFormat) {
  Registry r;
  // Backslash, quote and newline are exactly the three characters the
  // 0.0.4 text format requires escaping in label values.
  r.counter("esc_total", "Escapes", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = r.renderPrometheus();
  EXPECT_NE(text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Metrics, HelpTextEscapesBackslashAndNewline) {
  Registry r;
  r.counter("h_total", "line one\nline \\ two").inc();
  const std::string text = r.renderPrometheus();
  EXPECT_NE(text.find("# HELP h_total line one\\nline \\\\ two\n"),
            std::string::npos);
}

TEST(Metrics, InvalidLabelNamesThrow) {
  Registry r;
  EXPECT_THROW(r.counter("ok_total", "h", {{"0bad", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(r.counter("ok_total", "h", {{"has-dash", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(r.counter("ok_total", "h", {{"__reserved", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(r.counter("ok_total", "h", {{"", "v"}}),
               std::invalid_argument);
  // A leading single underscore is legal.
  EXPECT_NO_THROW(r.counter("ok_total", "h", {{"_fine", "v"}}));
}

TEST(Metrics, FamilyKindConflictAcrossLabelsThrows) {
  Registry r;
  r.counter("mixed_total", "h", {{"a", "1"}}).inc();
  EXPECT_THROW(r.gauge("mixed_total", "h", {{"a", "2"}}),
               std::invalid_argument);
}

TEST(Metrics, DoubleCounterAccumulatesAndRendersAsCounter) {
  Registry r;
  DoubleCounter& j = r.doubleCounter("energy_joules", "Joules",
                                     {{"device", "P100"}});
  j.add(1.5);
  j.add(2.25);
  EXPECT_DOUBLE_EQ(j.value(), 3.75);
  const std::string text = r.renderPrometheus();
  EXPECT_NE(text.find("# TYPE energy_joules counter\n"), std::string::npos);
  EXPECT_NE(text.find("energy_joules{device=\"P100\"} 3.75\n"),
            std::string::npos);
}

// Conformance lint over the full exposition grammar: family names and
// label names against the Prometheus regexes, label values legally
// escaped, every sample attributable to exactly one HELP/TYPE pair.
// This is the test the 0.0.4 spec asks scrapers to rely on.
bool validMetricName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool validLabelNameForLint(const std::string& s) {
  if (s.empty() || s.size() >= 2 * 1024) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return !(s.size() >= 2 && s[0] == '_' && s[1] == '_');
}

// Strip histogram sample suffixes to the family that owns the header.
std::string familyOf(const std::string& sample) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string sfx(suffix);
    if (sample.size() > sfx.size() &&
        sample.compare(sample.size() - sfx.size(), sfx.size(), sfx) == 0) {
      return sample.substr(0, sample.size() - sfx.size());
    }
  }
  return sample;
}

void lintExposition(const std::string& text) {
  std::map<std::string, std::string> typeOf;  // family -> TYPE
  std::set<std::string> helped;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "unterminated final line";
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ASSERT_FALSE(line.empty());

    if (line.rfind("# HELP ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(7, sp - 7);
      EXPECT_TRUE(validMetricName(name)) << line;
      EXPECT_TRUE(helped.insert(name).second)
          << "duplicate HELP for " << name;
      // Escaped help: a raw newline cannot appear (we split on it), a
      // backslash must be followed by 'n' or '\\'.
      const std::string help = line.substr(sp + 1);
      for (std::size_t i = 0; i < help.size(); ++i) {
        if (help[i] == '\\') {
          ASSERT_LT(i + 1, help.size()) << line;
          EXPECT_TRUE(help[i + 1] == 'n' || help[i + 1] == '\\') << line;
          ++i;
        }
      }
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(7, sp - 7);
      const std::string type = line.substr(sp + 1);
      EXPECT_TRUE(validMetricName(name)) << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram" || type == "summary" ||
                  type == "untyped")
          << line;
      EXPECT_TRUE(typeOf.emplace(name, type).second)
          << "duplicate TYPE for " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;

    // Sample line: name[{labels}] value
    std::size_t nameEnd = 0;
    while (nameEnd < line.size() && line[nameEnd] != '{' &&
           line[nameEnd] != ' ') {
      ++nameEnd;
    }
    const std::string sample = line.substr(0, nameEnd);
    EXPECT_TRUE(validMetricName(sample)) << line;
    const std::string family = familyOf(sample);
    EXPECT_TRUE(typeOf.count(family))
        << "sample " << sample << " has no TYPE header";
    EXPECT_TRUE(helped.count(family))
        << "sample " << sample << " has no HELP header";

    std::size_t i = nameEnd;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        ASSERT_NE(eq, std::string::npos) << line;
        EXPECT_TRUE(validLabelNameForLint(line.substr(i, eq - i))) << line;
        ASSERT_EQ(line[eq + 1], '"') << line;
        i = eq + 2;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ASSERT_LT(i + 1, line.size()) << line;
            EXPECT_TRUE(line[i + 1] == '\\' || line[i + 1] == '"' ||
                        line[i + 1] == 'n')
                << "illegal label-value escape in: " << line;
            ++i;
          }
          ++i;
        }
        ASSERT_LT(i, line.size()) << line;
        ++i;  // closing quote
        if (i < line.size() && line[i] == ',') ++i;
      }
      ASSERT_LT(i, line.size()) << line;
      ++i;  // closing brace
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    const std::string value = line.substr(i + 1);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      std::size_t parsed = 0;
      EXPECT_NO_THROW({ (void)std::stod(value, &parsed); }) << line;
      EXPECT_EQ(parsed, value.size()) << line;
    }
  }
}

TEST(Metrics, ExpositionPassesConformanceLint) {
  Registry r;
  r.counter("ep_requests_total", "Requests").inc(7);
  r.counter("ep_by_dev_total", "By device", {{"device", "P100"}}).inc(1);
  r.counter("ep_by_dev_total", "By device", {{"device", "K40c"}}).inc(2);
  r.doubleCounter("ep_joules", "Energy\nledger", {{"device", "P\\100\""}})
      .add(12.5);
  r.gauge("ep_depth", "Depth").set(-3);
  r.histogram("ep_lat_ms", "Latency", {1.0, 8.0}, {{"op", "tune"}})
      .observe(3.0);
  lintExposition(r.renderPrometheus());
}

// The broker's and the process-global registry's expositions must both
// pass the same lint (they are concatenated by epserved).
TEST(Metrics, GlobalRegistryPassesConformanceLint) {
  lintExposition(Registry::global().renderPrometheus());
}

// ---------------------------------------------------------------------------
// Snapshots, exemplars, OpenMetrics 1.0, and federation

const FamilySnapshot* familyNamed(const RegistrySnapshot& snap,
                                  const std::string& name) {
  for (const auto& f : snap.families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

TEST(Snapshot, CapturesEveryKindWithNonCumulativeBuckets) {
  Registry r;
  r.counter("sn_req_total", "Requests").inc(3);
  r.doubleCounter("sn_joules_total", "Energy").add(2.5);
  r.gauge("sn_depth", "Depth").set(-4);
  Histogram& h = r.histogram("sn_lat_ms", "Latency", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(6.0);
  h.observe(100.0);

  const RegistrySnapshot snap = r.snapshot();
  ASSERT_EQ(snap.families.size(), 4u);

  const FamilySnapshot* c = familyNamed(snap, "sn_req_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::Counter);
  ASSERT_EQ(c->series.size(), 1u);
  EXPECT_EQ(c->series[0].counterValue, 3u);

  const FamilySnapshot* j = familyNamed(snap, "sn_joules_total");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->kind, MetricKind::DoubleCounter);
  EXPECT_DOUBLE_EQ(j->series[0].doubleValue, 2.5);

  const FamilySnapshot* g = familyNamed(snap, "sn_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricKind::Gauge);
  EXPECT_EQ(g->series[0].gaugeValue, -4);

  const FamilySnapshot* hs = familyNamed(snap, "sn_lat_ms");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->kind, MetricKind::Histogram);
  ASSERT_EQ(hs->series.size(), 1u);
  const SeriesSnapshot& s = hs->series[0];
  EXPECT_EQ(s.bounds, (std::vector<double>{1.0, 10.0}));
  // Per-bucket (non-cumulative) counts; +Inf last.
  EXPECT_EQ(s.buckets, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_NEAR(s.sum, 111.5, 1e-9);
}

// renderExposition(snapshot, 0.0.4) is the render path behind
// renderPrometheus(); the two must agree byte for byte so nothing the
// old tests pin ever changes.
TEST(Snapshot, PrometheusRenderIsByteIdenticalToLegacyPath) {
  Registry r;
  r.counter("bi_total", "Requests", {{"device", "P100"}}).inc(7);
  r.gauge("bi_depth", "Depth").set(5);
  r.histogram("bi_ms", "Latency", {1.0}).observe(0.25);
  EXPECT_EQ(ep::obs::renderExposition(r.snapshot(),
                                      ExpositionFormat::Prometheus004),
            r.renderPrometheus());
}

TEST(Exemplars, HistogramKeepsLastTracePerBucket) {
  Registry r;
  Histogram& h = r.histogram("ex_ms", "Latency", {1.0, 10.0});
  h.observe(0.5, 0xAAu);
  h.observe(0.7, 0xBBu);   // same bucket: newer wins
  h.observe(5.0, 0xCCu);
  h.observe(50.0, 0xDDu);  // +Inf bucket

  const ep::obs::Exemplar b0 = h.exemplar(0);
  EXPECT_EQ(b0.traceId, 0xBBu);
  EXPECT_DOUBLE_EQ(b0.value, 0.7);
  EXPECT_NE(b0.seq, 0u);
  EXPECT_EQ(h.exemplar(1).traceId, 0xCCu);
  EXPECT_EQ(h.exemplar(2).traceId, 0xDDu);

  // A trace-less observe must not disturb the recorded exemplar.
  h.observe(0.9);
  EXPECT_EQ(h.exemplar(0).traceId, 0xBBu);
}

TEST(Exemplars, OpenMetricsRenderCarriesTraceIdOnBuckets) {
  Registry r;
  Histogram& h = r.histogram("om_ms", "Latency", {1.0});
  h.observe(0.5, 0xCAFE01u);

  const std::string om =
      ep::obs::renderExposition(r.snapshot(), ExpositionFormat::OpenMetrics100);
  EXPECT_NE(om.find("om_ms_bucket{le=\"1\"} 1 # {trace_id=\"cafe01\"} 0.5\n"),
            std::string::npos);
  // The 0.0.4 exposition of the same snapshot must NOT carry exemplars.
  const std::string prom =
      ep::obs::renderExposition(r.snapshot(), ExpositionFormat::Prometheus004);
  EXPECT_EQ(prom.find("# {"), std::string::npos);
}

TEST(Exemplars, LabelValuesInExemplarsAreEscaped) {
  // Build the snapshot by hand: wire trace ids are hex in practice, but
  // the renderer must escape whatever the exemplar carries.
  RegistrySnapshot snap;
  FamilySnapshot fam;
  fam.kind = MetricKind::Histogram;
  fam.name = "esc_ms";
  fam.help = "h";
  SeriesSnapshot s;
  s.bounds = {1.0};
  s.buckets = {1, 0};
  s.sum = 0.5;
  s.exemplars = {{"a\"b\\c\nd", 0.5, 1}, {}};
  fam.series.push_back(s);
  snap.families.push_back(fam);

  const std::string om =
      ep::obs::renderExposition(snap, ExpositionFormat::OpenMetrics100);
  EXPECT_NE(om.find("# {trace_id=\"a\\\"b\\\\c\\nd\"} 0.5"),
            std::string::npos);
}

TEST(OpenMetrics, CounterFamiliesDropTotalInMetadataAndEndWithEof) {
  Registry r;
  r.counter("omc_total", "Requests").inc(4);
  r.doubleCounter("omj_total", "Joules").add(1.5);
  r.gauge("om_gauge_total", "A gauge whose name just ends that way").set(2);

  const std::string om =
      ep::obs::renderExposition(r.snapshot(), ExpositionFormat::OpenMetrics100);
  // Counter metadata names the base; samples re-attach _total.
  EXPECT_NE(om.find("# HELP omc Requests\n"), std::string::npos);
  EXPECT_NE(om.find("# TYPE omc counter\n"), std::string::npos);
  EXPECT_NE(om.find("omc_total 4\n"), std::string::npos);
  EXPECT_NE(om.find("# TYPE omj counter\n"), std::string::npos);
  EXPECT_NE(om.find("omj_total 1.5\n"), std::string::npos);
  // Gauges never strip the suffix.
  EXPECT_NE(om.find("# TYPE om_gauge_total gauge\n"), std::string::npos);
  EXPECT_NE(om.find("om_gauge_total 2\n"), std::string::npos);
  // Exactly one # EOF, as the final line.
  EXPECT_EQ(om.rfind("# EOF\n"), om.size() - 6);
  EXPECT_EQ(om.find("# EOF"), om.rfind("# EOF"));
}

// OpenMetrics lint: reuse the 0.0.4 structural lint after normalizing
// the two OM-only constructs (exemplar clauses and the # EOF trailer)
// and re-basing counter sample names onto their metadata names.
void lintOpenMetrics(const std::string& om) {
  ASSERT_GE(om.size(), 6u);
  ASSERT_EQ(om.substr(om.size() - 6), "# EOF\n") << "missing # EOF";
  std::string normalized;
  std::size_t pos = 0;
  std::set<std::string> counterBases;
  // First pass: collect counter metadata names.
  while (pos < om.size()) {
    const std::size_t nl = om.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const std::string line = om.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.rfind("# TYPE ", 0) == 0 &&
        line.substr(line.rfind(' ') + 1) == "counter") {
      const std::size_t sp = line.find(' ', 7);
      counterBases.insert(line.substr(7, sp - 7));
    }
  }
  pos = 0;
  while (pos < om.size()) {
    const std::size_t nl = om.find('\n', pos);
    const std::string line = om.substr(pos, nl - pos);
    pos = nl + 1;
    if (line == "# EOF") continue;
    std::string out = line;
    if (!out.empty() && out[0] != '#') {
      // Strip an exemplar clause (" # {...} value") if present.
      const std::size_t ex = out.find(" # {");
      if (ex != std::string::npos) {
        // Validate the clause shape before dropping it.
        const std::size_t close = out.find("} ", ex + 3);
        ASSERT_NE(close, std::string::npos) << line;
        EXPECT_NE(out.find("trace_id=\"", ex), std::string::npos) << line;
        out = out.substr(0, ex);
      }
      // Re-base "name_total" samples whose family metadata is "name".
      const std::size_t nameEnd = out.find_first_of("{ ");
      ASSERT_NE(nameEnd, std::string::npos) << line;
      const std::string sample = out.substr(0, nameEnd);
      constexpr const char* kTotal = "_total";
      if (sample.size() > 6 &&
          sample.compare(sample.size() - 6, 6, kTotal) == 0 &&
          counterBases.count(sample.substr(0, sample.size() - 6))) {
        out = sample.substr(0, sample.size() - 6) + out.substr(nameEnd);
      }
    }
    normalized += out;
    normalized += '\n';
  }
  lintExposition(normalized);
}

TEST(OpenMetrics, ExpositionPassesLintWithExemplars) {
  Registry r;
  r.counter("oml_req_total", "Requests").inc(7);
  r.counter("oml_dev_total", "By device", {{"device", "P100"}}).inc(1);
  r.doubleCounter("oml_joules_total", "Energy", {{"device", "K40c"}})
      .add(12.5);
  r.gauge("oml_depth", "Depth").set(-3);
  Histogram& h =
      r.histogram("oml_ms", "Latency", {1.0, 8.0}, {{"op", "tune"}});
  h.observe(3.0, 0xBEEFu);
  h.observe(0.5, 0xF00Du);
  lintOpenMetrics(
      ep::obs::renderExposition(r.snapshot(), ExpositionFormat::OpenMetrics100));
  // The daemon-facing Registry::renderOpenMetrics() path too.
  lintOpenMetrics(r.renderOpenMetrics());
}

TEST(Federation, BucketMergeIsAssociativeAndExact) {
  auto mkSeries = [](std::vector<std::uint64_t> buckets, double sum,
                     std::vector<ep::obs::SnapshotExemplar> ex) {
    SeriesSnapshot s;
    s.bounds = {1.0, 10.0};
    s.buckets = std::move(buckets);
    s.sum = sum;
    s.exemplars = std::move(ex);
    return s;
  };
  const SeriesSnapshot a =
      mkSeries({1, 2, 3}, 40.0, {{"aa", 0.5, 3}, {}, {}});
  const SeriesSnapshot b =
      mkSeries({5, 0, 2}, 12.5, {{"bb", 0.9, 7}, {"b1", 4.0, 2}, {}});
  const SeriesSnapshot c =
      mkSeries({0, 4, 1}, 9.25, {{"cc", 0.1, 5}, {}, {"c2", 99.0, 9}});

  const SeriesSnapshot ab_c = ep::obs::mergeHistogramSeries(
      ep::obs::mergeHistogramSeries(a, b), c);
  const SeriesSnapshot a_bc = ep::obs::mergeHistogramSeries(
      a, ep::obs::mergeHistogramSeries(b, c));

  EXPECT_EQ(ab_c.buckets, (std::vector<std::uint64_t>{6, 6, 6}));
  EXPECT_EQ(a_bc.buckets, ab_c.buckets);
  EXPECT_DOUBLE_EQ(ab_c.sum, 61.75);
  EXPECT_DOUBLE_EQ(a_bc.sum, ab_c.sum);
  // Exemplars resolve newest-by-seq regardless of merge order.
  ASSERT_EQ(ab_c.exemplars.size(), 3u);
  EXPECT_EQ(ab_c.exemplars[0].traceId, "bb");  // seq 7 beats 3 and 5
  EXPECT_EQ(ab_c.exemplars[1].traceId, "b1");
  EXPECT_EQ(ab_c.exemplars[2].traceId, "c2");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a_bc.exemplars[i].traceId, ab_c.exemplars[i].traceId);
    EXPECT_EQ(a_bc.exemplars[i].seq, ab_c.exemplars[i].seq);
  }

  SeriesSnapshot mismatched = a;
  mismatched.bounds = {1.0, 20.0};
  EXPECT_THROW(ep::obs::mergeHistogramSeries(a, mismatched),
               std::invalid_argument);
}

TEST(Federation, MergeShardSnapshotsSumsCountersAndLabelsGauges) {
  Registry s0;
  s0.counter("fed_req_total", "Requests").inc(3);
  s0.gauge("fed_depth", "Depth").set(2);
  s0.histogram("fed_ms", "Latency", {1.0}).observe(0.5);
  Registry s1;
  s1.counter("fed_req_total", "Requests").inc(4);
  s1.gauge("fed_depth", "Depth").set(9);
  Histogram& h1 = s1.histogram("fed_ms", "Latency", {1.0});
  h1.observe(0.6);
  h1.observe(50.0);

  const RegistrySnapshot merged = ep::obs::mergeShardSnapshots(
      {{"s0", s0.snapshot()}, {"s1", s1.snapshot()}});

  const FamilySnapshot* c = familyNamed(merged, "fed_req_total");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->series.size(), 1u);
  EXPECT_EQ(c->series[0].counterValue, 7u);

  const FamilySnapshot* g = familyNamed(merged, "fed_depth");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->series.size(), 2u);
  // Gauges stay per shard, tagged with an appended shard label.
  const std::string text =
      ep::obs::renderExposition(merged, ExpositionFormat::Prometheus004);
  EXPECT_NE(text.find("fed_depth{shard=\"s0\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("fed_depth{shard=\"s1\"} 9\n"), std::string::npos);

  const FamilySnapshot* h = familyNamed(merged, "fed_ms");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->series.size(), 1u);
  EXPECT_EQ(h->series[0].buckets, (std::vector<std::uint64_t>{2, 1}));
  // Cumulative render: le="1" holds 2, +Inf holds all 3.
  EXPECT_NE(text.find("fed_ms_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("fed_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  lintExposition(text);
}

// ---------------------------------------------------------------------------
// eptsdb: ring wraparound, windowed aggregation, histogram quantiles

TEST(Tsdb, RingWraparoundKeepsNewestSamplesInOrder) {
  TimeSeriesStore store(4);
  Registry r;
  Counter& c = r.counter("wrap_total", "h");
  for (int t = 1; t <= 10; ++t) {
    c.inc();
    store.ingest(r.snapshot(), t * 1000);
  }
  const auto samples =
      store.range("wrap_total", 0, std::numeric_limits<std::int64_t>::max());
  ASSERT_EQ(samples.size(), 4u);  // ring capacity, oldest overwritten
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].timeNs, static_cast<std::int64_t>(7 + i) * 1000);
    EXPECT_DOUBLE_EQ(samples[i].value, 7.0 + static_cast<double>(i));
  }
  EXPECT_EQ(store.ringCapacity(), 4u);
}

TEST(Tsdb, WindowedAggregateAndRate) {
  TimeSeriesStore store;
  Registry r;
  Counter& c = r.counter("agg_total", "h");
  // One scrape per synthetic second; counter grows by 2 per scrape.
  for (int t = 1; t <= 10; ++t) {
    c.inc(2);
    store.ingest(r.snapshot(), static_cast<std::int64_t>(t) * 1000000000);
  }
  const auto agg = store.aggregate("agg_total", 4 * 1000000000LL,
                                   8 * 1000000000LL);
  EXPECT_EQ(agg.samples, 5u);  // t = 4..8 inclusive
  EXPECT_DOUBLE_EQ(agg.first, 8.0);
  EXPECT_DOUBLE_EQ(agg.last, 16.0);
  EXPECT_DOUBLE_EQ(agg.min, 8.0);
  EXPECT_DOUBLE_EQ(agg.max, 16.0);
  EXPECT_DOUBLE_EQ(agg.avg, 12.0);
  EXPECT_NEAR(agg.rate, 2.0, 1e-9);  // 8 over 4 seconds

  // Unknown keys are empty, not an error.
  EXPECT_EQ(store.range("nope_total", 0, 1).size(), 0u);
  EXPECT_EQ(store.aggregate("nope_total", 0, 1).samples, 0u);
}

TEST(Tsdb, HistogramDecomposesIntoExpositionKeyedSeries) {
  TimeSeriesStore store;
  Registry r;
  Histogram& h =
      r.histogram("ts_ms", "Latency", {1.0, 10.0}, {{"op", "tune"}});
  h.observe(0.5);
  store.ingest(r.snapshot(), 1000);

  const auto keys = store.seriesKeys();
  const auto has = [&](const std::string& k) {
    return std::find(keys.begin(), keys.end(), k) != keys.end();
  };
  EXPECT_TRUE(has("ts_ms_count{op=\"tune\"}"));
  EXPECT_TRUE(has("ts_ms_sum{op=\"tune\"}"));
  EXPECT_TRUE(has("ts_ms_bucket{op=\"tune\",le=\"1\"}"));
  EXPECT_TRUE(has("ts_ms_bucket{op=\"tune\",le=\"10\"}"));
  EXPECT_TRUE(has("ts_ms_bucket{op=\"tune\",le=\"+Inf\"}"));

  const auto metas = store.histogramsForFamily("ts_ms");
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_EQ(metas[0].bounds, (std::vector<double>{1.0, 10.0}));
  // Buckets are stored cumulatively, like a scrape would see them.
  const auto inf =
      store.range("ts_ms_bucket{op=\"tune\",le=\"+Inf\"}", 0, 2000);
  ASSERT_EQ(inf.size(), 1u);
  EXPECT_DOUBLE_EQ(inf[0].value, 1.0);
}

TEST(Tsdb, WindowedQuantileFromCumulativeDeltas) {
  TimeSeriesStore store;
  Registry r;
  Histogram& h = r.histogram("q_ms", "Latency", {1.0, 10.0});
  // Scrape 1: one fast request (this is "before the window's story").
  h.observe(0.5);
  store.ingest(r.snapshot(), 1 * 1000000000LL);
  // Scrape 2: 8 requests in (1,10], 2 beyond every bound.
  for (int i = 0; i < 8; ++i) h.observe(5.0);
  h.observe(100.0);
  h.observe(200.0);
  store.ingest(r.snapshot(), 2 * 1000000000LL);

  // Window covering both scrapes: deltas are 0/8/2 (total 10).
  const double p50 =
      store.histogramQuantile("q_ms", 0.5, 0, 3 * 1000000000LL);
  EXPECT_DOUBLE_EQ(p50, 10.0);
  // q into the +Inf bucket: +infinity.
  const double p99 =
      store.histogramQuantile("q_ms", 0.99, 0, 3 * 1000000000LL);
  EXPECT_TRUE(std::isinf(p99));
  // A window with fewer than two scrapes falls back to the lifetime
  // distribution (1+8 in-bound, 2 beyond; p50 lands in (1,10]).
  const double lifetime = store.histogramQuantile(
      "q_ms", 0.5, 2 * 1000000000LL - 1, 2 * 1000000000LL);
  EXPECT_DOUBLE_EQ(lifetime, 10.0);
  // Unknown family: NaN.
  EXPECT_TRUE(std::isnan(store.histogramQuantile("nope_ms", 0.5, 0, 1)));
}

TEST(Tsdb, ScraperRunsOnInjectedClockAndFiresHook) {
  TimeSeriesStore store;
  Registry r;
  Counter& c = r.counter("scr_total", "h");
  std::int64_t now = 1000;
  std::vector<std::int64_t> hookTimes;
  Scraper::Options opts;
  opts.clock = [&now] { return now; };
  opts.afterScrape = [&hookTimes](std::int64_t t) { hookTimes.push_back(t); };
  Scraper scraper(&store, [&r] { return r.snapshot(); }, opts);

  c.inc(5);
  scraper.scrapeOnce();
  now = 2000;
  c.inc(5);
  scraper.scrapeOnce();

  EXPECT_EQ(scraper.scrapes(), 2u);
  ASSERT_EQ(hookTimes.size(), 2u);
  EXPECT_EQ(hookTimes[0], 1000);
  EXPECT_EQ(hookTimes[1], 2000);
  const auto samples = store.range("scr_total", 0, 5000);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].value, 5.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 10.0);
  EXPECT_GE(scraper.lastScrapeDurationNs(), 0);
}

TEST(Tsdb, BackgroundScraperStartStopIsClean) {
  TimeSeriesStore store;
  Registry r;
  r.counter("bg_total", "h").inc();
  Scraper::Options opts;
  opts.intervalMs = 1;
  Scraper scraper(&store, [&r] { return r.snapshot(); }, opts);
  scraper.start();
  while (scraper.scrapes() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scraper.stop();
  const std::uint64_t after = scraper.scrapes();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(scraper.scrapes(), after);  // no scrapes past stop()
  EXPECT_GE(store
                .range("bg_total", 0,
                       std::numeric_limits<std::int64_t>::max())
                .size(),
            3u);
}

// ---------------------------------------------------------------------------
// SLO burn-rate engine

TEST(Slo, ParseSpecGrammar) {
  std::string err;
  auto lat = ep::obs::parseSloSpec("latency:0.5:0.99", &err);
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(lat->kind, SloSpec::Kind::LatencyQuantile);
  EXPECT_EQ(lat->name, "latency");
  EXPECT_DOUBLE_EQ(lat->latencyThresholdMs, 0.5);
  EXPECT_DOUBLE_EQ(lat->objective, 0.99);

  auto en = ep::obs::parseSloSpec("energy:2.5", &err);
  ASSERT_TRUE(en.has_value());
  EXPECT_EQ(en->kind, SloSpec::Kind::EnergyPerRequest);
  EXPECT_EQ(en->name, "energy");
  EXPECT_DOUBLE_EQ(en->joulesPerRequestBudget, 2.5);

  auto named = ep::obs::parseSloSpec("p99=latency:1.5:0.999", &err);
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(named->name, "p99");

  for (const char* bad :
       {"", "latency", "latency:0.5", "latency:-1:0.9", "latency:1:1.5",
        "energy:0", "energy:-2", "watts:5", "=latency:1:0.9",
        "latency:abc:0.9"}) {
    EXPECT_FALSE(ep::obs::parseSloSpec(bad, &err).has_value()) << bad;
  }
}

// Drive synthetic scrapes through a tsdb and watch a latency SLO raise
// on sustained badness and clear — with hysteresis — on recovery.
TEST(Slo, LatencyBurnRaisesAndClearsWithHysteresis) {
  TimeSeriesStore store;
  Registry r;
  Histogram& h = r.histogram("slo_ms", "Latency", {1.0, 10.0});
  constexpr std::int64_t kSec = 1000000000;

  SloSpec spec;
  spec.kind = SloSpec::Kind::LatencyQuantile;
  spec.name = "lat";
  spec.family = "slo_ms";
  spec.latencyThresholdMs = 1.0;
  spec.objective = 0.9;  // budget: 10% slow
  spec.windows = {{10000, 2000, 5.0}};  // 10s long, 2s short, 5x burn
  SloEngine engine(&store, {spec});

  auto scrape = [&](int sec) { store.ingest(r.snapshot(), sec * kSec); };

  scrape(0);
  // 5 seconds of fully-bad traffic: every request slower than 1ms.
  for (int sec = 1; sec <= 5; ++sec) {
    for (int i = 0; i < 10; ++i) h.observe(5.0);
    scrape(sec);
    engine.evaluate(sec * kSec);
  }
  auto status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_TRUE(status[0].burning);
  // All-bad traffic at a 10% budget burns at 10x.
  EXPECT_NEAR(status[0].worstBurn, 10.0, 1e-6);
  EXPECT_EQ(status[0].raisedCount, 1u);
  EXPECT_EQ(engine.activeAlerts(), 1u);
  const auto raised = engine.events();
  ASSERT_FALSE(raised.empty());
  EXPECT_STREQ(raised.back().kind, "slo_burn");
  EXPECT_STREQ(raised.back().scope, "lat");

  // Recovery: all-good traffic.  The alert must persist while the long
  // window still carries the damage (hysteresis), then clear.
  bool sawBurningDuringRecovery = false;
  for (int sec = 6; sec <= 20; ++sec) {
    for (int i = 0; i < 10; ++i) h.observe(0.5);
    scrape(sec);
    engine.evaluate(sec * kSec);
    if (sec <= 7) {
      sawBurningDuringRecovery =
          sawBurningDuringRecovery || engine.status()[0].burning;
    }
  }
  EXPECT_TRUE(sawBurningDuringRecovery);
  status = engine.status();
  EXPECT_FALSE(status[0].burning);
  EXPECT_EQ(engine.activeAlerts(), 0u);
  const auto events = engine.events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_STREQ(events.back().kind, "slo_cleared");
  // Re-evaluating in the clear state raises nothing new.
  engine.evaluate(21 * kSec);
  EXPECT_EQ(engine.status()[0].raisedCount, 1u);
}

TEST(Slo, EnergyBudgetBurnFromLedgerCounters) {
  TimeSeriesStore store;
  Registry r;
  DoubleCounter& joules = r.doubleCounter("slo_j", "Joules");
  Counter& reqs = r.counter("slo_req_total", "Requests");
  constexpr std::int64_t kSec = 1000000000;

  SloSpec spec;
  spec.kind = SloSpec::Kind::EnergyPerRequest;
  spec.name = "energy";
  spec.energyFamily = "slo_j";
  spec.requestsFamily = "slo_req_total";
  spec.joulesPerRequestBudget = 1.0;
  spec.windows = {{10000, 2000, 3.0}};
  SloEngine engine(&store, {spec});

  store.ingest(r.snapshot(), 0);
  // 5 J per request against a 1 J budget: burn 5x over every window.
  for (int sec = 1; sec <= 5; ++sec) {
    joules.add(50.0);
    reqs.inc(10);
    store.ingest(r.snapshot(), sec * kSec);
    engine.evaluate(sec * kSec);
  }
  const auto status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_TRUE(status[0].burning);
  EXPECT_NEAR(status[0].worstBurn, 5.0, 1e-6);
  EXPECT_EQ(status[0].kind, SloSpec::Kind::EnergyPerRequest);
  ASSERT_FALSE(engine.events().empty());
  EXPECT_STREQ(engine.events().back().kind, "slo_burn");
}

TEST(Slo, NoHistoryMeansNoBurn) {
  TimeSeriesStore store;
  SloSpec spec;  // defaults target the broker's families; store is empty
  SloEngine engine(&store, {spec});
  engine.evaluate(1000000000);
  const auto status = engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].burning);
  EXPECT_DOUBLE_EQ(status[0].worstBurn, 0.0);
  EXPECT_EQ(engine.activeAlerts(), 0u);
  EXPECT_TRUE(engine.events().empty());
}

// ---------------------------------------------------------------------------
// Tracer

// Restores the global tracer to its quiet default on scope exit so
// span tests cannot leak state into each other.
struct GlobalTracerGuard {
  GlobalTracerGuard() {
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
  }
  ~GlobalTracerGuard() {
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
  }
};

TEST(Trace, DisabledSpansRecordNothing) {
  GlobalTracerGuard guard;
  {
    Span a("test/a");
    Span b("test/b");
  }
  EXPECT_EQ(Tracer::global().recordedCount(), 0u);
  EXPECT_EQ(Tracer::global().droppedCount(), 0u);
}

TEST(Trace, NestedSpansCarryDepthAndContainment) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  {
    Span outer("test/outer");
    { Span inner("test/inner"); }
  }
  Tracer::global().setEnabled(false);

  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test/inner");
  EXPECT_STREQ(outer.name, "test/outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.tid, inner.tid);
  // The inner interval nests inside the outer one.
  EXPECT_GE(inner.startNs, outer.startNs);
  EXPECT_LE(inner.startNs + inner.durNs, outer.startNs + outer.durNs);
}

TEST(Trace, ThreadsGetDistinctTids) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  std::thread t1([] { Span s("test/t1"); });
  std::thread t2([] { Span s("test/t2"); });
  t1.join();
  t2.join();
  Tracer::global().setEnabled(false);

  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Trace, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer t(4);
  auto& buf = t.threadBuffer();
  for (std::uint64_t i = 1; i <= 6; ++i) {
    buf.push(TraceEvent{"test/ring", i * 100, 10, buf.tid, 0});
  }
  EXPECT_EQ(t.recordedCount(), 4u);
  EXPECT_EQ(t.droppedCount(), 2u);
  std::set<std::uint64_t> starts;
  for (const auto& e : t.snapshot()) starts.insert(e.startNs);
  EXPECT_EQ(starts, (std::set<std::uint64_t>{300, 400, 500, 600}));

  t.clear();
  EXPECT_EQ(t.recordedCount(), 0u);
  EXPECT_EQ(t.droppedCount(), 0u);
}

// Validate the exported JSON against the Chrome trace-event schema
// using the in-tree flat-JSON wire parser (events are emitted flat for
// exactly this reason — no external JSON dependency needed).
TEST(Trace, ChromeExportMatchesTraceEventSchema) {
  Tracer t(16);
  auto& buf = t.threadBuffer();
  buf.push(TraceEvent{"phase/alpha", 1000, 500, buf.tid, 0});
  buf.push(TraceEvent{"with\"quote\\slash", 2000, 250, buf.tid, 1});

  const std::string json = t.exportChromeTrace();
  ASSERT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);

  // Split into lines; every line after the header that starts with '{'
  // is one flat event object (strip the trailing comma).
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < json.size()) {
    const std::size_t nl = json.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(json.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.back(), "]}");

  std::size_t parsed = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == ',') line.pop_back();
    std::string error;
    const auto obj = ep::serve::wire::parseObject(line, &error);
    ASSERT_TRUE(obj) << "line " << i << ": " << error << " in " << line;
    ++parsed;

    using Kind = ep::serve::wire::Value::Kind;
    ASSERT_TRUE(obj->count("name"));
    EXPECT_EQ(obj->at("name").kind, Kind::String);
    ASSERT_TRUE(obj->count("ph"));
    EXPECT_EQ(obj->at("ph").string, "X");
    ASSERT_TRUE(obj->count("cat"));
    ASSERT_TRUE(obj->count("ts"));
    EXPECT_EQ(obj->at("ts").kind, Kind::Number);
    EXPECT_GE(obj->at("ts").number, 0.0);
    ASSERT_TRUE(obj->count("dur"));
    EXPECT_EQ(obj->at("dur").kind, Kind::Number);
    EXPECT_GE(obj->at("dur").number, 0.0);
    ASSERT_TRUE(obj->count("pid"));
    EXPECT_EQ(obj->at("pid").number, 1.0);
    ASSERT_TRUE(obj->count("tid"));
    EXPECT_GE(obj->at("tid").number, 1.0);
  }
  EXPECT_EQ(parsed, 2u);

  // ts/dur are microseconds.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.500"), std::string::npos);
}

TEST(Trace, ConcurrentRecordingAndExportIsSafe) {
  GlobalTracerGuard guard;
  Tracer& t = Tracer::global();
  t.setEnabled(true);
  constexpr int kRecorders = 4;
  constexpr int kSpansEach = 2000;
  std::atomic<int> done{0};
  std::vector<std::thread> recorders;
  for (int i = 0; i < kRecorders; ++i) {
    recorders.emplace_back([&] {
      for (int n = 0; n < kSpansEach; ++n) {
        Span outer("test/conc_outer");
        Span inner("test/conc_inner");
      }
      done.fetch_add(1);
    });
  }
  // Export concurrently with the recording threads until they finish.
  while (done.load() < kRecorders) {
    const std::string json = t.exportChromeTrace();
    EXPECT_FALSE(json.empty());
    (void)t.recordedCount();
    (void)t.droppedCount();
  }
  for (auto& r : recorders) r.join();
  t.setEnabled(false);
  EXPECT_EQ(t.recordedCount() + t.droppedCount(),
            2ull * kRecorders * kSpansEach);
}

// ---------------------------------------------------------------------------
// TraceContext: request identity across spans, scopes, and pool threads

TEST(TraceContext, TraceIdFromStringParsesHexAndHashesTheRest) {
  EXPECT_EQ(ep::obs::traceIdFromString(""), 0u);
  EXPECT_EQ(ep::obs::traceIdFromString("deadbeef"), 0xdeadbeefull);
  EXPECT_EQ(ep::obs::traceIdFromString("DEADBEEF"), 0xdeadbeefull);
  EXPECT_EQ(ep::obs::traceIdFromString("ffffffffffffffff"), ~0ull);
  // Non-hex strings hash to a stable nonzero id.
  const std::uint64_t h = ep::obs::traceIdFromString("request-42");
  EXPECT_NE(h, 0u);
  EXPECT_EQ(h, ep::obs::traceIdFromString("request-42"));
  EXPECT_NE(h, ep::obs::traceIdFromString("request-43"));
  // Hex ids round-trip through the export form.
  EXPECT_EQ(ep::obs::formatTraceId(0xdeadbeefull), "deadbeef");
}

TEST(TraceContext, ScopedContextInstallsAndRestores) {
  EXPECT_EQ(ep::obs::currentContext().traceId, 0u);
  {
    ScopedTraceContext outer(TraceContext{0xAAu, 1u});
    EXPECT_EQ(ep::obs::currentContext().traceId, 0xAAu);
    {
      ScopedTraceContext inner(TraceContext{0xBBu, 2u});
      EXPECT_EQ(ep::obs::currentContext().traceId, 0xBBu);
      EXPECT_EQ(ep::obs::currentContext().spanId, 2u);
    }
    EXPECT_EQ(ep::obs::currentContext().traceId, 0xAAu);
    EXPECT_EQ(ep::obs::currentContext().spanId, 1u);
  }
  EXPECT_EQ(ep::obs::currentContext().traceId, 0u);
}

TEST(TraceContext, SpansRecordTraceIdAndParentChain) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  {
    ScopedTraceContext scope(TraceContext{0xFACEu, 0u});
    Span outer("ctx/outer");
    { Span inner("ctx/inner"); }
  }
  Tracer::global().setEnabled(false);

  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(outer.traceId, 0xFACEu);
  EXPECT_EQ(inner.traceId, 0xFACEu);
  EXPECT_NE(outer.spanId, 0u);
  EXPECT_EQ(outer.parentSpanId, 0u);
  EXPECT_EQ(inner.parentSpanId, outer.spanId);
  EXPECT_NE(inner.spanId, outer.spanId);
}

TEST(TraceContext, DisabledTracingLeavesContextUntouched) {
  GlobalTracerGuard guard;
  ScopedTraceContext scope(TraceContext{0x11u, 0u});
  {
    Span s("ctx/disabled");
    EXPECT_EQ(ep::obs::currentContext().spanId, 0u);
    EXPECT_EQ(s.spanId(), 0u);
  }
  EXPECT_EQ(Tracer::global().recordedCount(), 0u);
}

TEST(TraceContext, ThreadPoolPropagatesSubmitterContext) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  ep::ThreadPool pool(2);
  std::uint64_t rootSpanId = 0;
  {
    ScopedTraceContext scope(TraceContext{0xC0FFEEu, 0u});
    Span root("ctx/root");
    rootSpanId = root.spanId();
    for (int i = 0; i < 8; ++i) {
      pool.submit([] { Span child("ctx/pool_child"); });
    }
    pool.wait();
  }
  Tracer::global().setEnabled(false);

  std::size_t children = 0;
  std::set<std::uint32_t> childTids;
  std::uint32_t rootTid = 0;
  for (const auto& e : Tracer::global().snapshot()) {
    if (std::string(e.name) == "ctx/pool_child") {
      ++children;
      childTids.insert(e.tid);
      // Every pool child links to the submitting root span and carries
      // the request trace id across the thread hop.
      EXPECT_EQ(e.traceId, 0xC0FFEEu);
      EXPECT_EQ(e.parentSpanId, rootSpanId);
    } else if (std::string(e.name) == "ctx/root") {
      rootTid = e.tid;
    }
  }
  EXPECT_EQ(children, 8u);
  // With 2 workers and 8 tasks at least one child ran off the
  // submitter's thread — the propagation is genuinely cross-thread.
  EXPECT_TRUE(childTids.size() > 1 || childTids.count(rootTid) == 0);
}

TEST(TraceContext, ParallelForTasksInheritContext) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  ep::ThreadPool pool(3);
  {
    ScopedTraceContext scope(TraceContext{0xABCu, 0u});
    Span root("ctx/pfroot");
    pool.parallelFor(0, 32, [](int) { Span s("ctx/pf_child"); });
  }
  Tracer::global().setEnabled(false);
  std::size_t withTrace = 0;
  std::size_t children = 0;
  for (const auto& e : Tracer::global().snapshot()) {
    if (std::string(e.name) == "ctx/pf_child") {
      ++children;
      if (e.traceId == 0xABCu) ++withTrace;
    }
  }
  EXPECT_EQ(children, 32u);
  EXPECT_EQ(withTrace, children);
}

// Cross-thread edges surface as "s"/"f" flow pairs in the export.
TEST(TraceContext, ExportEmitsFlowPairsForCrossThreadParents) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  ep::ThreadPool pool(2);
  {
    ScopedTraceContext scope(TraceContext{0xF10u, 0u});
    Span root("ctx/flow_root");
    for (int i = 0; i < 4; ++i) {
      pool.submit([] { Span child("ctx/flow_child"); });
    }
    pool.wait();
  }
  Tracer::global().setEnabled(false);

  const std::string json = Tracer::global().exportChromeTrace();
  std::size_t flowStarts = 0;
  std::size_t flowEnds = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\":\"s\"", pos)) != std::string::npos) {
    ++flowStarts;
    pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"f\"", pos)) != std::string::npos) {
    ++flowEnds;
    pos += 8;
  }
  EXPECT_EQ(flowStarts, flowEnds);
  EXPECT_GE(flowStarts, 1u);
}

// Satellite: fill a small ring past capacity, export, and require the
// output to still be schema-valid with the oldest events dropped and
// no torn records.
TEST(Trace, WraparoundExportStaysSchemaValid) {
  Tracer t(8);
  auto& buf = t.threadBuffer();
  // 20 events through an 8-slot ring: 12 dropped, newest 8 retained.
  for (std::uint64_t i = 1; i <= 20; ++i) {
    buf.push(TraceEvent{"ring/evt", 1000 * i, 100, buf.tid,
                        static_cast<std::uint32_t>(i % 3), 0xAB, i, i - 1});
  }
  EXPECT_EQ(t.recordedCount(), 8u);
  EXPECT_EQ(t.droppedCount(), 12u);

  const std::string json = t.exportChromeTrace();
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < json.size()) {
    const std::size_t nl = json.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(json.substr(pos, nl - pos));
    pos = nl + 1;
  }
  std::set<std::uint64_t> spans;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == ',') line.pop_back();
    std::string error;
    const auto obj = ep::serve::wire::parseObject(line, &error);
    ASSERT_TRUE(obj) << error << " in " << line;
    if (obj->at("ph").string != "X") continue;
    // Untorn: every surviving record keeps its own coherent identity
    // (span i was pushed with start i*1000 and parent i-1).
    const auto span = static_cast<std::uint64_t>(obj->at("span").number);
    // startNs was pushed as span*1000, so ts (microseconds) == span.
    EXPECT_EQ(obj->at("ts").number, static_cast<double>(span));
    EXPECT_EQ(obj->at("parent").number, static_cast<double>(span - 1));
    EXPECT_EQ(obj->at("trace").string, "ab");
    spans.insert(span);
  }
  // Exactly the newest 8, oldest dropped.
  EXPECT_EQ(spans, (std::set<std::uint64_t>{13, 14, 15, 16, 17, 18, 19, 20}));
}

// ---------------------------------------------------------------------------
// FlightRecorder: the watchdog's lock-free event ring

FlightEvent makeFlight(double value, const char* kind, const char* scope,
                       const char* msg) {
  FlightEvent e;
  e.timeNs = 42;
  e.traceId = 0xFEEDu;
  e.value = value;
  e.threshold = 25.0;
  ep::obs::setFlightField(e.kind, kind);
  ep::obs::setFlightField(e.scope, scope);
  ep::obs::setFlightField(e.message, msg);
  return e;
}

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  FlightRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  rec.record(makeFlight(58.0, "constant_component", "P100", "58 W step"));
  rec.record(makeFlight(0.2, "error_budget", "K40c", "burning"));
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_STREQ(events[0].kind, "constant_component");
  EXPECT_STREQ(events[0].scope, "P100");
  EXPECT_DOUBLE_EQ(events[0].value, 58.0);
  EXPECT_EQ(events[0].traceId, 0xFEEDu);
  EXPECT_STREQ(events[1].kind, "error_budget");
  // sinceSeq drains incrementally.
  const auto tail = rec.snapshot(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 2u);
  EXPECT_TRUE(rec.snapshot(2).empty());
}

TEST(FlightRecorder, CapacityRoundsUpAndWrapKeepsNewest) {
  FlightRecorder rec(5);  // rounds to 8
  EXPECT_EQ(rec.capacity(), 8u);
  for (int i = 1; i <= 20; ++i) {
    rec.record(makeFlight(i, "kind", "scope", "m"));
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 0u);  // lapping is overwrite, not drop
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(13 + i));
  }
}

TEST(FlightRecorder, FieldSettingTruncatesSafely) {
  FlightEvent e;
  const std::string longMsg(300, 'x');
  ep::obs::setFlightField(e.message, longMsg.c_str());
  EXPECT_EQ(std::string(e.message).size(), sizeof e.message - 1);
  ep::obs::setFlightField(e.kind, "");
  EXPECT_STREQ(e.kind, "");
  ep::obs::setFlightField(e.kind, nullptr);
  EXPECT_STREQ(e.kind, "");
}

TEST(FlightRecorder, ConcurrentRecordAndSnapshotNeverTears) {
  FlightRecorder rec(16);
  constexpr int kWriters = 4;
  constexpr int kEach = 3000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load()) {
      std::uint64_t lastSeq = 0;
      for (const auto& e : rec.snapshot()) {
        // Every writer stamps a payload whose message is derived from
        // its value; a mismatch means a torn read escaped the
        // claim/publish validation.
        char expect[32];
        std::snprintf(expect, sizeof expect, "msg-%llu",
                      static_cast<unsigned long long>(e.value));
        if (std::string(e.message) != expect) torn.fetch_add(1);
        if (e.seq <= lastSeq) torn.fetch_add(1);  // snapshot seq order
        lastSeq = e.seq;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t payload =
            static_cast<std::uint64_t>(w) * 100000u + static_cast<unsigned>(i);
        FlightEvent e;
        e.value = static_cast<double>(payload);
        char msg[32];
        std::snprintf(msg, sizeof msg, "msg-%llu",
                      static_cast<unsigned long long>(payload));
        ep::obs::setFlightField(e.message, msg);
        rec.record(e);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  // Every record attempt is counted exactly once, as recorded or dropped.
  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kWriters) * kEach);
  EXPECT_LE(rec.snapshot().size() + rec.dropped(),
            16u + rec.dropped());
}

TEST(FlightRecorder, EncodedLinesParseWithWireParser) {
  FlightRecorder rec(8);
  rec.record(makeFlight(58.5, "constant_component", "Nvidia P100",
                        "a \"quoted\" message\nwith ctrl chars"));
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string line = ep::obs::encodeFlightEventLine(events[0]);
  std::string error;
  const auto obj = ep::serve::wire::parseObject(line, &error);
  ASSERT_TRUE(obj) << error << " in " << line;
  EXPECT_EQ(obj->at("seq").number, 1.0);
  EXPECT_EQ(obj->at("kind").string, "constant_component");
  EXPECT_EQ(obj->at("scope").string, "Nvidia P100");
  EXPECT_DOUBLE_EQ(obj->at("value").number, 58.5);
  EXPECT_DOUBLE_EQ(obj->at("threshold").number, 25.0);
  EXPECT_EQ(obj->at("trace").string, "feed");
  // Quotes escape; control characters are stripped so the body stays a
  // single line-delimited record.
  EXPECT_EQ(obj->at("message").string, "a \"quoted\" messagewith ctrl chars");
}

// ---------------------------------------------------------------------------
// Study-pipeline integration: a traced (meter-free) workload produces
// the expected phase spans and bumps the global workload counter.

TEST(Instrumentation, StudyRunEmitsPhaseSpansAndCounters) {
  GlobalTracerGuard guard;
  Counter& workloads = ep::obs::Registry::global().counter(
      "ep_study_workloads_total", "GPU study workloads evaluated");
  const std::uint64_t before = workloads.value();

  Tracer::global().setEnabled(true);
  ep::apps::GpuMatMulOptions fast;
  fast.useMeter = false;
  ep::apps::GpuMatMulApp app(ep::hw::GpuModel(ep::hw::nvidiaP100Pcie()),
                             fast);
  ep::core::GpuEpStudy study(app);
  ep::Rng rng(7);
  const auto result = study.runWorkload(10240, rng);
  Tracer::global().setEnabled(false);
  EXPECT_FALSE(result.points.empty());
  EXPECT_EQ(workloads.value(), before + 1);

  std::set<std::string> names;
  std::uint64_t workloadStart = 0;
  std::uint64_t workloadEnd = 0;
  std::uint64_t insideNs = 0;
  for (const auto& e : Tracer::global().snapshot()) {
    names.insert(e.name);
    if (std::string(e.name) == "study/workload") {
      workloadStart = e.startNs;
      workloadEnd = e.startNs + e.durNs;
    }
    if (std::string(e.name) == "study/app_eval" ||
        std::string(e.name) == "study/front_construction") {
      insideNs += e.durNs;
    }
  }
  EXPECT_TRUE(names.count("study/workload"));
  EXPECT_TRUE(names.count("study/app_eval"));
  EXPECT_TRUE(names.count("study/front_construction"));
  // The phase spans live inside the workload span and cover most of it:
  // phase attribution, not just a top-level total.
  ASSERT_GT(workloadEnd, workloadStart);
  EXPECT_LE(insideNs, workloadEnd - workloadStart);
  EXPECT_GE(static_cast<double>(insideNs),
            0.5 * static_cast<double>(workloadEnd - workloadStart));
}

// ---------------------------------------------------------------------------
// epprof: continuous profiler
//
// Profiler::global() is process state (signal dispositions, timers),
// so every test here arms, clears, and disarms around its own window.

TEST(Profiler, EnergyRecordsFoldOntoStacksAndTraceSlices) {
  Profiler& prof = Profiler::global();
  ProfilerOptions opts;
  opts.cpuSampling = false;  // deterministic: no signals, no timers
  ASSERT_TRUE(prof.start(opts));
  prof.clear();
  {
    ProfileThreadLabel root("test/main");
    {
      ProfileFrame kernel("test/kernel_a");
      ScopedTraceContext scope(TraceContext{0xABu, 0u});
      prof.recordEnergySample(2.0, ep::obs::currentContext().traceId);
      prof.recordEnergySample(1.5, ep::obs::currentContext().traceId);
    }
    {
      ProfileFrame kernel("test/kernel_b");
      prof.recordEnergySample(0.5, 0);  // untraced window
    }
    // Faulted windows (negative / NaN) must not poison the profile.
    prof.recordEnergySample(-1.0, 0);
    prof.recordEnergySample(std::numeric_limits<double>::quiet_NaN(), 0);
  }
  prof.stop();

  const ProfileSnapshot snap = prof.snapshot(ProfileKind::Energy);
  EXPECT_EQ(snap.samples, 3u);
  EXPECT_DOUBLE_EQ(snap.totalWeight, 4.0);
  EXPECT_EQ(snap.samplePeriodUs, 0u);  // energy profiles carry no period
  ASSERT_EQ(snap.entries.size(), 2u);
  // Weight-descending, root-first stacks.
  EXPECT_EQ(snap.entries[0].stack,
            (std::vector<std::string>{"test/main", "test/kernel_a"}));
  EXPECT_EQ(snap.entries[0].samples, 2u);
  EXPECT_DOUBLE_EQ(snap.entries[0].weight, 3.5);
  EXPECT_EQ(snap.entries[1].stack,
            (std::vector<std::string>{"test/main", "test/kernel_b"}));
  EXPECT_DOUBLE_EQ(snap.entries[1].weight, 0.5);
  // Per-trace slices: the traced request owns 3.5 J, slice 0 the rest.
  ASSERT_EQ(snap.traces.size(), 2u);
  EXPECT_EQ(snap.traces[0].traceId, 0xABu);
  EXPECT_DOUBLE_EQ(snap.traces[0].weight, 3.5);
  EXPECT_EQ(snap.traces[0].samples, 2u);
  EXPECT_EQ(snap.traces[1].traceId, 0u);
  EXPECT_DOUBLE_EQ(snap.traces[1].weight, 0.5);
  prof.clear();
}

TEST(Profiler, DisarmedRecordingIsANoOpAndSpansPushNoFrames) {
  Profiler& prof = Profiler::global();
  ASSERT_FALSE(prof.running());
  prof.clear();
  {
    ProfileFrame kernel("test/never");  // disarmed: not pushed
    prof.recordEnergySample(7.0, 0);    // disarmed: dropped
  }
  const ProfileSnapshot snap = prof.snapshot(ProfileKind::Energy);
  EXPECT_EQ(snap.samples, 0u);
  EXPECT_DOUBLE_EQ(snap.totalWeight, 0.0);
  EXPECT_TRUE(snap.entries.empty());
}

// The TSan signal-safety smoke the issue pins: arm real SIGPROF
// sampling, hammer Span push/pop from several busy threads, and
// require samples to aggregate without a crash, race report, or
// unbounded drop count.
TEST(Profiler, CpuSamplingSmokeAcrossBusyThreads) {
  Profiler& prof = Profiler::global();
  ProfilerOptions opts;
  opts.samplePeriodUs = 1000;  // 1 kHz of per-thread CPU time: fast smoke
  opts.aggregateIntervalMs = 5;
  ASSERT_TRUE(prof.start(opts));
  EXPECT_FALSE(prof.start(opts));  // second start is a rejected no-op
  prof.clear();

  std::atomic<bool> stopFlag{false};
  std::atomic<std::uint64_t> spins{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stopFlag, &spins] {
      ProfileThreadLabel root("test/worker");
      Profiler::global().registerCurrentThread();
      double acc = 1.0;
      while (!stopFlag.load(std::memory_order_relaxed)) {
        Span burn("test/burn");
        for (int i = 0; i < 4096; ++i) {
          acc += std::sqrt(acc + static_cast<double>(i));
        }
        spins.fetch_add(acc > 0.0 ? 1 : 0, std::memory_order_relaxed);
      }
    });
  }

  // CPU-time timers only fire while threads burn cycles, so a busy
  // quartet at 1 kHz reaches 64 samples almost immediately; the
  // deadline is generous for sanitizer builds.
  ProfileSnapshot snap;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    snap = prof.snapshot(ProfileKind::Cpu);
  } while (snap.samples < 64 &&
           std::chrono::steady_clock::now() < deadline);
  stopFlag.store(true);
  for (std::thread& w : workers) w.join();
  prof.stop();
  EXPECT_FALSE(prof.running());

  snap = prof.snapshot(ProfileKind::Cpu);
  EXPECT_GE(snap.samples, 64u) << "no SIGPROF samples after 30 s of burn";
  EXPECT_EQ(snap.samplePeriodUs, 1000u);
  // Every CPU sample weighs exactly one period.
  EXPECT_NEAR(snap.totalWeight, static_cast<double>(snap.samples) * 1e-3,
              1e-9);
  ASSERT_FALSE(snap.entries.empty());
  // The worker root label must anchor sampled stacks.
  std::uint64_t rooted = 0;
  for (const ProfileEntry& e : snap.entries) {
    ASSERT_FALSE(e.stack.empty());
    if (e.stack.front() == "test/worker") rooted += e.samples;
  }
  EXPECT_GT(rooted, 0u);
  prof.clear();

  // Stop/start cycling: a fresh window arms cleanly after a full stop.
  ASSERT_TRUE(prof.start(opts));
  prof.stop();
}

// The pinned reconciliation criterion: an energy-weighted profile of a
// fault-free metered study sweep must sum to the request ledger's
// attributed joules within 5 %, with the DGEMM kernel frame owning the
// profile (what the ci.sh drill asserts over the wire).
TEST(Profiler, EnergyProfileReconcilesWithStudyLedger) {
  Profiler& prof = Profiler::global();
  ProfilerOptions opts;
  opts.cpuSampling = false;  // energy-only: bit-deterministic study
  ASSERT_TRUE(prof.start(opts));
  prof.clear();

  ep::apps::GpuMatMulOptions mopts;
  mopts.totalProducts = 4;
  mopts.bsMax = 8;
  mopts.useMeter = true;
  mopts.meter.sampleInterval = ep::Seconds{0.02};
  mopts.meter.randomPhase = false;
  mopts.measurement.minRepetitions = 3;
  mopts.measurement.maxRepetitions = 12;
  ep::apps::GpuMatMulApp app(ep::hw::GpuModel(ep::hw::nvidiaK40c()), mopts);
  ep::core::GpuEpStudy study(app);
  ep::Rng rng(17);
  const auto result = study.runWorkload(2048, rng);
  prof.stop();

  ASSERT_FALSE(result.data.empty());
  const auto ledger = ep::core::attributeEnergy(result);
  ASSERT_GT(ledger.joules, 0.0);

  const ProfileSnapshot snap = prof.snapshot(ProfileKind::Energy);
  // One energy sample per finished measurement protocol = per config.
  EXPECT_EQ(snap.samples, result.data.size());
  EXPECT_NEAR(snap.totalWeight, ledger.joules, 0.05 * ledger.joules);
  // The kernel marker frame carries (inclusively) the whole profile.
  const auto top = ep::obs::topFrames(snap, 0);
  ASSERT_FALSE(top.empty());
  bool sawKernel = false;
  for (const auto& f : top) {
    if (f.frame == "kernel/dgemm") {
      sawKernel = true;
      EXPECT_GT(f.share, 0.95) << "kernel frame no longer dominates";
    }
  }
  EXPECT_TRUE(sawKernel) << "kernel/dgemm missing from the energy profile";
  prof.clear();
}

// --- export schemas ---

ProfileSnapshot syntheticEnergySnapshot() {
  ProfileSnapshot snap;
  snap.kind = ProfileKind::Energy;
  snap.samples = 4;
  ProfileEntry a;
  a.stack = {"serve/main", "kernel/dgemm"};
  a.samples = 3;
  a.weight = 2.5;
  ProfileEntry b;
  b.stack = {"serve/main", "\"quoted\\frame\""};
  b.samples = 1;
  b.weight = 0.5;
  snap.entries = {a, b};
  snap.totalWeight = 3.0;
  TraceSlice t;
  t.traceId = 0xFEEDu;
  t.samples = 3;
  t.weight = 2.5;
  snap.traces = {t};
  return snap;
}

TEST(ProfileExport, CollapsedStacksRoundTripCountsAndSkipZeroes) {
  ProfileSnapshot snap = syntheticEnergySnapshot();
  snap.entries[1].weight = 0.0;  // zero µJ: line must be skipped
  const std::string text = ep::obs::renderCollapsed(snap);
  // Energy counts are rounded microjoules; 2.5 J = 2.5e6 µJ.
  EXPECT_EQ(text, "serve/main;kernel/dgemm 2500000\n");

  ProfileSnapshot cpu = syntheticEnergySnapshot();
  cpu.kind = ProfileKind::Cpu;
  const std::string cpuText = ep::obs::renderCollapsed(cpu);
  // CPU counts are raw sample counts, every frame ';'-joined.
  EXPECT_NE(cpuText.find("serve/main;kernel/dgemm 3\n"), std::string::npos);
  EXPECT_NE(cpuText.find(" 1\n"), std::string::npos);
  // Each line is "stack count": one space, integer tail.
  std::size_t start = 0;
  while (start < cpuText.size()) {
    const std::size_t nl = cpuText.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    const std::string line = cpuText.substr(start, nl - start);
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u);
    start = nl + 1;
  }
}

TEST(ProfileExport, SpeedscopeDocumentIsSchemaValidViaWireParser) {
  const ProfileSnapshot snap = syntheticEnergySnapshot();
  const std::string doc = ep::obs::renderSpeedscope(snap, "unit-test");
  EXPECT_NE(
      doc.find("\"$schema\":\"https://www.speedscope.app/"
               "file-format-schema.json\""),
      std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"sampled\""), std::string::npos);
  EXPECT_NE(doc.find("\"activeProfileIndex\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"exporter\":\"epprof\""), std::string::npos);
  // Energy profiles are unit-less weights; CPU would say "seconds".
  EXPECT_NE(doc.find("\"unit\":\"none\""), std::string::npos);

  // Frame objects are emitted one per line precisely so the in-tree
  // flat parser can validate them, mirroring the Chrome trace test.
  const std::size_t open = doc.find("\"frames\":[\n");
  ASSERT_NE(open, std::string::npos);
  std::size_t cursor = open + std::string("\"frames\":[\n").size();
  std::size_t frameCount = 0;
  while (doc.compare(cursor, 1, "]") != 0) {
    const std::size_t nl = doc.find('\n', cursor);
    ASSERT_NE(nl, std::string::npos);
    std::string line = doc.substr(cursor, nl - cursor);
    if (!line.empty() && line.back() == ',') line.pop_back();
    std::string perr;
    const auto obj = ep::serve::wire::parseObject(line, &perr);
    ASSERT_TRUE(obj.has_value()) << line << ": " << perr;
    const auto it = obj->find("name");
    ASSERT_NE(it, obj->end());
    EXPECT_EQ(it->second.kind, ep::serve::wire::Value::Kind::String);
    EXPECT_FALSE(it->second.string.empty());
    ++frameCount;
    cursor = nl + 1;
  }
  // 3 distinct frames interned once each ("serve/main" shared).
  EXPECT_EQ(frameCount, 3u);
  // One sample row and one weight per entry.
  const std::size_t samplesPos = doc.find("\"samples\":[[");
  ASSERT_NE(samplesPos, std::string::npos);
  const std::size_t weightsPos = doc.find("\"weights\":[");
  ASSERT_NE(weightsPos, std::string::npos);
  EXPECT_NE(doc.find("\"endValue\":3"), std::string::npos);
}

TEST(ProfileExport, TopFramesAreInclusiveWithRecursionDedup) {
  ProfileSnapshot snap;
  snap.kind = ProfileKind::Cpu;
  ProfileEntry ab;
  ab.stack = {"a", "b"};
  ab.samples = 3;
  ab.weight = 3.0;
  ProfileEntry aba;  // recursive: 'a' appears twice, counts once
  aba.stack = {"a", "b", "a"};
  aba.samples = 1;
  aba.weight = 1.0;
  ProfileEntry c;
  c.stack = {"c"};
  c.samples = 6;
  c.weight = 6.0;
  snap.entries = {ab, aba, c};
  snap.samples = 10;
  snap.totalWeight = 10.0;

  const auto top = ep::obs::topFrames(snap, 0);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].frame, "c");
  EXPECT_DOUBLE_EQ(top[0].weight, 6.0);
  EXPECT_DOUBLE_EQ(top[0].share, 0.6);
  // a and b both cover the two a;b stacks: inclusive weight 4 each.
  EXPECT_EQ(top[1].frame, "a");
  EXPECT_DOUBLE_EQ(top[1].weight, 4.0);
  EXPECT_EQ(top[1].samples, 4u);
  EXPECT_EQ(top[2].frame, "b");
  EXPECT_DOUBLE_EQ(top[2].weight, 4.0);

  // topN truncates after ranking.
  EXPECT_EQ(ep::obs::topFrames(snap, 1).size(), 1u);
  EXPECT_EQ(ep::obs::topFrames(snap, 1)[0].frame, "c");
}

TEST(ProfileExport, MergeProfileSnapshotsPrefixesShardRootsAndSumsTraces) {
  ProfileSnapshot s0;
  s0.kind = ProfileKind::Energy;
  ProfileEntry e0;
  e0.stack = {"kernel/dgemm"};
  e0.samples = 2;
  e0.weight = 2.0;
  s0.entries = {e0};
  s0.samples = 2;
  s0.totalWeight = 2.0;
  TraceSlice t0;
  t0.traceId = 0x42u;
  t0.samples = 2;
  t0.weight = 2.0;
  s0.traces = {t0};

  ProfileSnapshot s1;
  s1.kind = ProfileKind::Energy;
  ProfileEntry e1;
  e1.stack = {"kernel/fft2d"};
  e1.samples = 1;
  e1.weight = 5.0;
  s1.entries = {e1};
  s1.samples = 1;
  s1.totalWeight = 5.0;
  TraceSlice t1;  // same request fanned out across both shards
  t1.traceId = 0x42u;
  t1.samples = 1;
  t1.weight = 5.0;
  s1.traces = {t1};

  const ProfileSnapshot merged =
      ep::obs::mergeProfileSnapshots({{"s0", s0}, {"s1", s1}});
  EXPECT_EQ(merged.kind, ProfileKind::Energy);
  EXPECT_EQ(merged.samples, 3u);
  EXPECT_DOUBLE_EQ(merged.totalWeight, 7.0);
  ASSERT_EQ(merged.entries.size(), 2u);
  // Weight-descending; every stack gains its shard root.
  EXPECT_EQ(merged.entries[0].stack,
            (std::vector<std::string>{"shard/s1", "kernel/fft2d"}));
  EXPECT_EQ(merged.entries[1].stack,
            (std::vector<std::string>{"shard/s0", "kernel/dgemm"}));
  // The cross-shard trace slice sums instead of duplicating.
  ASSERT_EQ(merged.traces.size(), 1u);
  EXPECT_EQ(merged.traces[0].traceId, 0x42u);
  EXPECT_EQ(merged.traces[0].samples, 3u);
  EXPECT_DOUBLE_EQ(merged.traces[0].weight, 7.0);
}

// ---------------------------------------------------------------------------
// eptsdb satellites: scraper lifecycle cycling and quantile reads that
// straddle a series-ring wraparound (exercised under TSan in ci.sh).

TEST(Tsdb, ScraperStartStopStartCyclesCleanly) {
  TimeSeriesStore store;
  Registry r;
  Histogram& h = r.histogram("cyc_ms", "Latency", {1.0, 10.0});
  h.observe(0.5);
  Scraper::Options opts;
  opts.intervalMs = 1;
  Scraper scraper(&store, [&r] { return r.snapshot(); }, opts);

  // Concurrent quantile reads while the background scraper ingests:
  // the satellite's TSan surface.
  std::atomic<bool> stopReader{false};
  std::thread reader([&store, &stopReader] {
    while (!stopReader.load(std::memory_order_relaxed)) {
      (void)store.histogramQuantile(
          "cyc_ms", 0.5, 0, std::numeric_limits<std::int64_t>::max());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  scraper.start();
  while (scraper.scrapes() < 3) {
    h.observe(5.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scraper.stop();
  const std::uint64_t firstRun = scraper.scrapes();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(scraper.scrapes(), firstRun);  // fully stopped

  // Restart resumes into the same store with a fresh thread.
  scraper.start();
  while (scraper.scrapes() < firstRun + 3) {
    h.observe(5.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scraper.stop();
  stopReader.store(true);
  reader.join();
  const std::uint64_t total = scraper.scrapes();
  EXPECT_GE(total, firstRun + 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(scraper.scrapes(), total);  // second stop is clean too
  EXPECT_GE(store
                .range("cyc_ms_count", 0,
                       std::numeric_limits<std::int64_t>::max())
                .size(),
            3u);
}

TEST(Tsdb, QuantileReadsStraddleSeriesRingWraparound) {
  // A 4-slot ring receiving 10 scrapes: the retained window is scrapes
  // 7..10, so the quantile must be computed from post-wrap deltas.
  TimeSeriesStore store(4);
  Registry r;
  Histogram& h = r.histogram("wrapq_ms", "Latency", {1.0, 10.0});
  for (int t = 1; t <= 10; ++t) {
    // Scrapes 1..8 add in-bound observations, 9..10 add outliers.
    h.observe(t <= 8 ? 5.0 : 100.0);
    store.ingest(r.snapshot(), static_cast<std::int64_t>(t) * 1000000000);
  }
  const auto retained = store.range(
      "wrapq_ms_count", 0, std::numeric_limits<std::int64_t>::max());
  ASSERT_EQ(retained.size(), 4u);  // the ring wrapped: only 7..10 live
  EXPECT_DOUBLE_EQ(retained.front().value, 7.0);
  EXPECT_DOUBLE_EQ(retained.back().value, 10.0);

  // Window deltas across the wrap: scrape 7 -> 10 adds one 5.0 (t=8)
  // and two 100.0s, so low quantiles resolve in (1,10] and high ones
  // escape to +Inf.
  const std::int64_t lo = 0;
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  EXPECT_DOUBLE_EQ(store.histogramQuantile("wrapq_ms", 0.25, lo, hi), 10.0);
  EXPECT_TRUE(std::isinf(store.histogramQuantile("wrapq_ms", 0.9, lo, hi)));
}

// ---------------------------------------------------------------------------
// ep_build_info satellite: the info gauge is stamped on the global
// registry and on explicit registries, idempotently, and its labels
// survive federation shard-labeling.

TEST(BuildInfo, StampedOnGlobalRegistryWithLabels) {
  const std::string text = Registry::global().renderPrometheus();
  const std::size_t pos = text.find("ep_build_info{");
  ASSERT_NE(pos, std::string::npos) << "global registry lacks ep_build_info";
  const std::size_t eol = text.find('\n', pos);
  const std::string line = text.substr(pos, eol - pos);
  EXPECT_NE(line.find("git_hash=\""), std::string::npos) << line;
  EXPECT_NE(line.find("build_type=\""), std::string::npos) << line;
  EXPECT_NE(line.find("compiler=\""), std::string::npos) << line;
  EXPECT_EQ(line.substr(line.size() - 2), " 1") << line;
}

TEST(BuildInfo, RegistrationIsIdempotentAndSurvivesShardMerge) {
  Registry s0;
  ep::obs::registerBuildInfo(s0);
  ep::obs::registerBuildInfo(s0);  // second stamp: same gauge, still 1
  Registry s1;
  ep::obs::registerBuildInfo(s1);

  const RegistrySnapshot merged = ep::obs::mergeShardSnapshots(
      {{"s0", s0.snapshot()}, {"s1", s1.snapshot()}});
  const std::string text =
      ep::obs::renderExposition(merged, ExpositionFormat::Prometheus004);
  // Info gauges stay per shard: one labeled series each, value 1, with
  // the build labels intact next to the appended shard label.
  for (const char* shard : {"s0", "s1"}) {
    const std::string needle = std::string("shard=\"") + shard + "\"";
    std::size_t pos = text.find("ep_build_info{");
    bool found = false;
    while (pos != std::string::npos) {
      const std::size_t eol = text.find('\n', pos);
      const std::string line = text.substr(pos, eol - pos);
      if (line.find(needle) != std::string::npos) {
        found = true;
        EXPECT_NE(line.find("git_hash=\""), std::string::npos) << line;
        EXPECT_EQ(line.substr(line.size() - 2), " 1") << line;
      }
      pos = text.find("ep_build_info{", eol);
    }
    EXPECT_TRUE(found) << "no ep_build_info for shard " << shard;
  }
  lintExposition(text);
}

}  // namespace
