// epobs: metrics registry semantics, Prometheus exposition, span
// tracing and Chrome trace-event export.
//
// The trace-export schema test deliberately reuses the serve wire
// parser: epobs emits flat event objects precisely so the in-tree
// dependency-free JSON parser can validate them.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/gpu_matmul_app.hpp"
#include "core/study.hpp"
#include "hw/gpu_model.hpp"
#include "hw/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/wire.hpp"

namespace {

using ep::obs::Counter;
using ep::obs::Gauge;
using ep::obs::Histogram;
using ep::obs::Registry;
using ep::obs::Span;
using ep::obs::TraceEvent;
using ep::obs::Tracer;

// ---------------------------------------------------------------------------
// Registry

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Registry r;
  Counter& c = r.counter("test_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetAddSub) {
  Registry r;
  Gauge& g = r.gauge("test_gauge", "help");
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

TEST(Metrics, RegistrationIsIdempotent) {
  Registry r;
  Counter& a = r.counter("same_total", "help");
  Counter& b = r.counter("same_total", "help");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);

  Histogram& h1 = r.histogram("same_hist", "help", {1.0, 2.0});
  Histogram& h2 = r.histogram("same_hist", "help", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, KindConflictThrows) {
  Registry r;
  r.counter("name_total", "help");
  EXPECT_THROW(r.gauge("name_total", "help"), std::invalid_argument);
  EXPECT_THROW(r.histogram("name_total", "help", {1.0}),
               std::invalid_argument);
}

TEST(Metrics, HistogramBoundsConflictThrows) {
  Registry r;
  r.histogram("h", "help", {1.0, 2.0});
  EXPECT_THROW(r.histogram("h", "help", {1.0, 3.0}), std::invalid_argument);
}

TEST(Metrics, InvalidNamesThrow) {
  Registry r;
  EXPECT_THROW(r.counter("", "help"), std::invalid_argument);
  EXPECT_THROW(r.counter("9starts_with_digit", "help"),
               std::invalid_argument);
  EXPECT_THROW(r.counter("has space", "help"), std::invalid_argument);
  EXPECT_THROW(r.counter("has-dash", "help"), std::invalid_argument);
  // The full Prometheus grammar, including colons, is accepted.
  EXPECT_NO_THROW(r.counter("ns:sub_system_total", "help"));
}

TEST(Metrics, HistogramBucketsAndSum) {
  Registry r;
  Histogram& h = r.histogram("lat_ms", "help", {1.0, 10.0});
  EXPECT_THROW(r.histogram("bad", "help", {2.0, 2.0}),
               std::invalid_argument);

  h.observe(0.5);   // bucket 0 (le 1.0)
  h.observe(1.0);   // bucket 0: le is inclusive
  h.observe(5.0);   // bucket 1 (le 10.0)
  h.observe(100.0); // +Inf bucket
  EXPECT_EQ(h.bucketValue(0), 2u);
  EXPECT_EQ(h.bucketValue(1), 1u);
  EXPECT_EQ(h.bucketValue(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 106.5, 1e-9);
  EXPECT_THROW((void)h.bucketValue(3), std::invalid_argument);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Registry r;
  Counter& c = r.counter("conc_total", "help");
  Histogram& h = r.histogram("conc_hist", "help", {10.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_NEAR(h.sum(), static_cast<double>(kThreads) * kIters, 1e-6);
}

// Line-level validation of the Prometheus text exposition: every line
// is a comment or `name[{le="bound"}] value`, histograms cumulative.
TEST(Metrics, RenderPrometheusIsWellFormed) {
  Registry r;
  Counter& c = r.counter("req_total", "Requests seen");
  Gauge& g = r.gauge("depth", "Queue depth");
  Histogram& h = r.histogram("lat_ms", "Latency", {1.0, 10.0});
  c.inc(3);
  g.set(-2);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const std::string text = r.renderPrometheus();
  EXPECT_NE(text.find("# HELP req_total Requests seen\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram\n"), std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3\n"), std::string::npos);

  // Structural pass over every line.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "exposition must end with newline";
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    // Value parses as a number.
    std::size_t parsed = 0;
    EXPECT_NO_THROW({ (void)std::stod(value, &parsed); }) << line;
    EXPECT_EQ(parsed, value.size()) << line;
  }
}

// ---------------------------------------------------------------------------
// Tracer

// Restores the global tracer to its quiet default on scope exit so
// span tests cannot leak state into each other.
struct GlobalTracerGuard {
  GlobalTracerGuard() {
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
  }
  ~GlobalTracerGuard() {
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
  }
};

TEST(Trace, DisabledSpansRecordNothing) {
  GlobalTracerGuard guard;
  {
    Span a("test/a");
    Span b("test/b");
  }
  EXPECT_EQ(Tracer::global().recordedCount(), 0u);
  EXPECT_EQ(Tracer::global().droppedCount(), 0u);
}

TEST(Trace, NestedSpansCarryDepthAndContainment) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  {
    Span outer("test/outer");
    { Span inner("test/inner"); }
  }
  Tracer::global().setEnabled(false);

  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test/inner");
  EXPECT_STREQ(outer.name, "test/outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.tid, inner.tid);
  // The inner interval nests inside the outer one.
  EXPECT_GE(inner.startNs, outer.startNs);
  EXPECT_LE(inner.startNs + inner.durNs, outer.startNs + outer.durNs);
}

TEST(Trace, ThreadsGetDistinctTids) {
  GlobalTracerGuard guard;
  Tracer::global().setEnabled(true);
  std::thread t1([] { Span s("test/t1"); });
  std::thread t2([] { Span s("test/t2"); });
  t1.join();
  t2.join();
  Tracer::global().setEnabled(false);

  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Trace, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer t(4);
  auto& buf = t.threadBuffer();
  for (std::uint64_t i = 1; i <= 6; ++i) {
    buf.push(TraceEvent{"test/ring", i * 100, 10, buf.tid, 0});
  }
  EXPECT_EQ(t.recordedCount(), 4u);
  EXPECT_EQ(t.droppedCount(), 2u);
  std::set<std::uint64_t> starts;
  for (const auto& e : t.snapshot()) starts.insert(e.startNs);
  EXPECT_EQ(starts, (std::set<std::uint64_t>{300, 400, 500, 600}));

  t.clear();
  EXPECT_EQ(t.recordedCount(), 0u);
  EXPECT_EQ(t.droppedCount(), 0u);
}

// Validate the exported JSON against the Chrome trace-event schema
// using the in-tree flat-JSON wire parser (events are emitted flat for
// exactly this reason — no external JSON dependency needed).
TEST(Trace, ChromeExportMatchesTraceEventSchema) {
  Tracer t(16);
  auto& buf = t.threadBuffer();
  buf.push(TraceEvent{"phase/alpha", 1000, 500, buf.tid, 0});
  buf.push(TraceEvent{"with\"quote\\slash", 2000, 250, buf.tid, 1});

  const std::string json = t.exportChromeTrace();
  ASSERT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);

  // Split into lines; every line after the header that starts with '{'
  // is one flat event object (strip the trailing comma).
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < json.size()) {
    const std::size_t nl = json.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(json.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.back(), "]}");

  std::size_t parsed = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == ',') line.pop_back();
    std::string error;
    const auto obj = ep::serve::wire::parseObject(line, &error);
    ASSERT_TRUE(obj) << "line " << i << ": " << error << " in " << line;
    ++parsed;

    using Kind = ep::serve::wire::Value::Kind;
    ASSERT_TRUE(obj->count("name"));
    EXPECT_EQ(obj->at("name").kind, Kind::String);
    ASSERT_TRUE(obj->count("ph"));
    EXPECT_EQ(obj->at("ph").string, "X");
    ASSERT_TRUE(obj->count("cat"));
    ASSERT_TRUE(obj->count("ts"));
    EXPECT_EQ(obj->at("ts").kind, Kind::Number);
    EXPECT_GE(obj->at("ts").number, 0.0);
    ASSERT_TRUE(obj->count("dur"));
    EXPECT_EQ(obj->at("dur").kind, Kind::Number);
    EXPECT_GE(obj->at("dur").number, 0.0);
    ASSERT_TRUE(obj->count("pid"));
    EXPECT_EQ(obj->at("pid").number, 1.0);
    ASSERT_TRUE(obj->count("tid"));
    EXPECT_GE(obj->at("tid").number, 1.0);
  }
  EXPECT_EQ(parsed, 2u);

  // ts/dur are microseconds.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.500"), std::string::npos);
}

TEST(Trace, ConcurrentRecordingAndExportIsSafe) {
  GlobalTracerGuard guard;
  Tracer& t = Tracer::global();
  t.setEnabled(true);
  constexpr int kRecorders = 4;
  constexpr int kSpansEach = 2000;
  std::atomic<int> done{0};
  std::vector<std::thread> recorders;
  for (int i = 0; i < kRecorders; ++i) {
    recorders.emplace_back([&] {
      for (int n = 0; n < kSpansEach; ++n) {
        Span outer("test/conc_outer");
        Span inner("test/conc_inner");
      }
      done.fetch_add(1);
    });
  }
  // Export concurrently with the recording threads until they finish.
  while (done.load() < kRecorders) {
    const std::string json = t.exportChromeTrace();
    EXPECT_FALSE(json.empty());
    (void)t.recordedCount();
    (void)t.droppedCount();
  }
  for (auto& r : recorders) r.join();
  t.setEnabled(false);
  EXPECT_EQ(t.recordedCount() + t.droppedCount(),
            2ull * kRecorders * kSpansEach);
}

// ---------------------------------------------------------------------------
// Study-pipeline integration: a traced (meter-free) workload produces
// the expected phase spans and bumps the global workload counter.

TEST(Instrumentation, StudyRunEmitsPhaseSpansAndCounters) {
  GlobalTracerGuard guard;
  Counter& workloads = ep::obs::Registry::global().counter(
      "ep_study_workloads_total", "GPU study workloads evaluated");
  const std::uint64_t before = workloads.value();

  Tracer::global().setEnabled(true);
  ep::apps::GpuMatMulOptions fast;
  fast.useMeter = false;
  ep::apps::GpuMatMulApp app(ep::hw::GpuModel(ep::hw::nvidiaP100Pcie()),
                             fast);
  ep::core::GpuEpStudy study(app);
  ep::Rng rng(7);
  const auto result = study.runWorkload(10240, rng);
  Tracer::global().setEnabled(false);
  EXPECT_FALSE(result.points.empty());
  EXPECT_EQ(workloads.value(), before + 1);

  std::set<std::string> names;
  std::uint64_t workloadStart = 0;
  std::uint64_t workloadEnd = 0;
  std::uint64_t insideNs = 0;
  for (const auto& e : Tracer::global().snapshot()) {
    names.insert(e.name);
    if (std::string(e.name) == "study/workload") {
      workloadStart = e.startNs;
      workloadEnd = e.startNs + e.durNs;
    }
    if (std::string(e.name) == "study/app_eval" ||
        std::string(e.name) == "study/front_construction") {
      insideNs += e.durNs;
    }
  }
  EXPECT_TRUE(names.count("study/workload"));
  EXPECT_TRUE(names.count("study/app_eval"));
  EXPECT_TRUE(names.count("study/front_construction"));
  // The phase spans live inside the workload span and cover most of it:
  // phase attribution, not just a top-level total.
  ASSERT_GT(workloadEnd, workloadStart);
  EXPECT_LE(insideNs, workloadEnd - workloadStart);
  EXPECT_GE(static_cast<double>(insideNs),
            0.5 * static_cast<double>(workloadEnd - workloadStart));
}

}  // namespace
