// epchaos tests: deterministic retry backoff schedules (serial ==
// parallel), retry budgets that never amplify under concurrency, the
// per-key determinism of the ChaosEngine decorator, NetChaos decision
// streams, and FaultyTransport campaigns over a real loopback server.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/chaos_engine.hpp"
#include "chaos/faulty_transport.hpp"
#include "chaos/net_chaos.hpp"
#include "chaos/retry.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"

namespace ep::chaos {
namespace {

// --- RetryPolicy ---

TEST(RetryPolicy, DelayIsAPureFunctionOfItsInputs) {
  RetryPolicy a;
  RetryPolicy b;
  for (std::uint64_t stream = 0; stream < 4; ++stream) {
    for (std::uint64_t req = 0; req < 16; ++req) {
      for (int attempt = 1; attempt <= 4; ++attempt) {
        EXPECT_DOUBLE_EQ(a.delayMs(stream, req, attempt),
                         b.delayMs(stream, req, attempt));
      }
    }
  }
  // Distinct streams decorrelate: the schedules cannot all coincide.
  bool anyDiffer = false;
  for (std::uint64_t req = 0; req < 16 && !anyDiffer; ++req) {
    anyDiffer = a.delayMs(0, req, 1) != a.delayMs(1, req, 1);
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(RetryPolicy, DelaysStayInsideTheJitteredExponentialEnvelope) {
  RetryPolicy p;
  p.baseDelayMs = 2.0;
  p.maxDelayMs = 50.0;
  p.jitter = 0.5;
  for (std::uint64_t req = 0; req < 64; ++req) {
    for (int attempt = 1; attempt <= 8; ++attempt) {
      const double envelope =
          std::min(p.baseDelayMs * static_cast<double>(1ULL << (attempt - 1)),
                   p.maxDelayMs);
      const double d = p.delayMs(7, req, attempt);
      EXPECT_LE(d, envelope) << "attempt " << attempt;
      EXPECT_GE(d, (1.0 - p.jitter) * envelope) << "attempt " << attempt;
    }
  }
}

TEST(RetryPolicy, ScheduleIsIdenticalSerialAndParallel) {
  RetryPolicy p;
  constexpr int kStreams = 4;
  constexpr int kRequests = 64;
  constexpr int kAttempts = 3;
  // Serial reference schedule.
  std::vector<std::vector<double>> serial(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    for (int r = 0; r < kRequests; ++r) {
      for (int a = 1; a <= kAttempts; ++a) {
        serial[s].push_back(p.delayMs(static_cast<std::uint64_t>(s),
                                      static_cast<std::uint64_t>(r), a));
      }
    }
  }
  // The same schedule computed by concurrent workers.
  std::vector<std::vector<double>> parallel(kStreams);
  std::vector<std::thread> threads;
  for (int s = 0; s < kStreams; ++s) {
    threads.emplace_back([&p, &parallel, s] {
      for (int r = 0; r < kRequests; ++r) {
        for (int a = 1; a <= kAttempts; ++a) {
          parallel[s].push_back(p.delayMs(static_cast<std::uint64_t>(s),
                                          static_cast<std::uint64_t>(r), a));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial, parallel);
}

// --- RetryBudget ---

TEST(RetryBudget, AccruesPerAttemptAndSpendsPerRetry) {
  RetryBudget budget(/*ratio=*/0.5, /*maxTokens=*/8.0, /*initialTokens=*/1.0);
  budget.onAttempt();
  budget.onAttempt();  // 1 initial + 2 * 0.5 accrued = 2 tokens
  EXPECT_TRUE(budget.tryRetry());
  EXPECT_TRUE(budget.tryRetry());
  EXPECT_FALSE(budget.tryRetry());
  EXPECT_EQ(budget.granted(), 2u);
  EXPECT_EQ(budget.denied(), 1u);
}

TEST(RetryBudget, NeverExceedsTheRatioUnderConcurrentCoalescedCallers) {
  // 8 workers sharing one budget: 100 first attempts each, then every
  // worker hammers tryRetry.  Whatever the interleaving, grants can
  // never exceed ratio * attempts (plus nothing: initialTokens = 0).
  RetryBudget budget(/*ratio=*/0.1, /*maxTokens=*/1e9, /*initialTokens=*/0.0);
  constexpr int kWorkers = 8;
  constexpr int kAttemptsPer = 100;
  constexpr int kRetryTriesPer = 50;
  std::atomic<std::uint64_t> grants{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPer; ++i) budget.onAttempt();
      for (int i = 0; i < kRetryTriesPer; ++i) {
        if (budget.tryRetry()) grants.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t cap = static_cast<std::uint64_t>(
      0.1 * kWorkers * kAttemptsPer);  // = 80 whole tokens
  EXPECT_LE(budget.granted(), cap);
  EXPECT_EQ(budget.granted(), grants.load());
  EXPECT_EQ(budget.granted() + budget.denied(),
            static_cast<std::uint64_t>(kWorkers) * kRetryTriesPer);
}

// --- ChaosOptions / ChaosCounts ---

TEST(ChaosOptions, CampaignSplitsTheBudgetAcrossFaultKinds) {
  const ChaosOptions o = ChaosOptions::campaign(0.05);
  EXPECT_TRUE(o.enabled);
  EXPECT_NEAR(o.connectResetRate + o.tornFrameRate + o.corruptFrameRate +
                  o.stallRate,
              0.05, 1e-12);
  EXPECT_GT(o.acceptDropRate, 0.0);
  EXPECT_GT(o.inboundCorruptRate, 0.0);
  EXPECT_FALSE(ChaosOptions::campaign(0.0).enabled);
}

TEST(ChaosCounts, AccumulatesAndSummarizes) {
  ChaosCounts a;
  a.connectResets = 2;
  a.engineFailures = 1;
  ChaosCounts b;
  b.connectResets = 1;
  b.stalls = 3;
  a += b;
  EXPECT_EQ(a.connectResets, 3u);
  EXPECT_EQ(a.stalls, 3u);
  EXPECT_EQ(a.total(), 7u);
  EXPECT_NE(a.summary().find("resets=3"), std::string::npos);
  EXPECT_NE(a.summary().find("total=7"), std::string::npos);
}

// --- ChaosEngine ---

std::shared_ptr<serve::EpStudyEngine> innerEngine() {
  return std::make_shared<serve::EpStudyEngine>();
}

TEST(ChaosEngine, DelegatesBitwiseWhenNoFaultFires) {
  auto inner = innerEngine();
  ChaosEngineOptions o;  // failRate/hangRate 0
  ChaosEngine chaotic(inner, o);
  EXPECT_EQ(chaotic.tuningHash(serve::Device::P100),
            inner->tuningHash(serve::Device::P100));
  const auto clean = inner->evaluate(serve::Device::P100, 512);
  const auto wrapped = chaotic.evaluate(serve::Device::P100, 512);
  ASSERT_EQ(wrapped.points.size(), clean.points.size());
  for (std::size_t i = 0; i < clean.points.size(); ++i) {
    EXPECT_EQ(wrapped.points[i].time.value(), clean.points[i].time.value());
    EXPECT_EQ(wrapped.points[i].energy.value(),
              clean.points[i].energy.value());
  }
  EXPECT_EQ(chaotic.failuresInjected(), 0u);
}

TEST(ChaosEngine, FaultingKeysAreAPureFunctionOfTheSeed) {
  auto inner = innerEngine();
  ChaosEngineOptions o;
  o.failRate = 0.5;
  o.seed = 0xFEEDULL;
  auto faultedKeys = [&](const ChaosEngine& e) {
    std::set<int> keys;
    for (int n = 64; n <= 64 * 40; n += 64) {
      try {
        (void)e.evaluate(serve::Device::P100, n);
      } catch (...) {
        keys.insert(n);
      }
    }
    return keys;
  };
  ChaosEngine a(inner, o);
  ChaosEngine b(inner, o);
  const auto ka = faultedKeys(a);
  EXPECT_EQ(ka, faultedKeys(b));
  EXPECT_FALSE(ka.empty());
  EXPECT_LT(ka.size(), 40u);  // rate 0.5 faults some, not all
  o.seed = 0xBEEFULL;
  ChaosEngine c(inner, o);
  EXPECT_NE(ka, faultedKeys(c));
}

TEST(ChaosEngine, CrashFailsEveryKeyUntilRecover) {
  auto inner = innerEngine();
  ChaosEngine chaotic(inner, ChaosEngineOptions{});
  EXPECT_NO_THROW((void)chaotic.evaluate(serve::Device::P100, 256));
  chaotic.crash();
  EXPECT_TRUE(chaotic.crashed());
  EXPECT_THROW((void)chaotic.evaluate(serve::Device::P100, 256),
               std::exception);
  EXPECT_THROW((void)chaotic.evaluate(serve::Device::K40c, 512),
               std::exception);
  chaotic.recover();
  EXPECT_NO_THROW((void)chaotic.evaluate(serve::Device::P100, 256));
}

TEST(ChaosEngine, HangDelegatesAfterTheDelayAndCounts) {
  auto inner = innerEngine();
  ChaosEngineOptions o;
  o.hangRate = 1.0;
  o.hangMs = 5.0;
  ChaosEngine chaotic(inner, o);
  const auto r = chaotic.evaluate(serve::Device::P100, 384);
  EXPECT_FALSE(r.points.empty());  // slow, not wrong
  EXPECT_GE(chaotic.hangsInjected(), 1u);
}

// --- NetChaos ---

TEST(NetChaos, DecisionStreamsAreReproducible) {
  ChaosOptions o;
  o.enabled = true;
  o.acceptDropRate = 0.3;
  o.inboundCorruptRate = 0.3;
  auto runStream = [&o] {
    NetChaos chaos(o);
    const auto hooks = chaos.hooks();
    std::string journal;
    for (std::uint64_t conn = 1; conn <= 50; ++conn) {
      journal += hooks.dropOnAccept(conn) ? 'D' : '.';
      for (int chunk = 0; chunk < 4; ++chunk) {
        std::string bytes(32, static_cast<char>('a' + chunk));
        const bool close = hooks.onInbound(conn, bytes);
        journal += close ? 'C' : '-';
        journal += bytes;  // mutations included in the comparison
      }
    }
    return std::make_pair(journal, chaos.counts().summary());
  };
  const auto a = runStream();
  const auto b = runStream();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first.find('D'), std::string::npos);
}

// --- FaultyTransport over a real loopback server ---

net::ResponseBuffer okBuffer() { return net::makeBuffer("{\"ok\":true}\n"); }

TEST(FaultyTransport, CampaignIsReproducibleAgainstARealServer) {
  net::ServerOptions so;
  net::Server server(so, [](net::Server& s,
                            std::vector<net::InboundFrame>&& batch) {
    for (const auto& f : batch) s.respond(f.conn, f.seq, okBuffer());
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto runCampaign = [&server] {
    FaultyTransportOptions to;
    to.port = server.port();
    to.recvTimeoutMs = 200.0;
    to.chaos = ChaosOptions::campaign(0.3);
    FaultyTransport transport(to, /*stream=*/3);
    std::string journal;
    for (int i = 0; i < 48; ++i) {
      const auto out = transport.roundTrip(
          "{\"op\":\"noop\"}\n", static_cast<std::uint64_t>(i));
      journal += out.ok ? 'k' : 'x';
      journal += std::to_string(out.attempts);
      journal += '/';
      journal += std::to_string(out.faultsInjected);
      journal += ';';
    }
    return std::make_pair(journal, transport.counts().summary());
  };
  const auto a = runCampaign();
  const auto b = runCampaign();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // A 30% campaign over 48 requests must actually inject.
  EXPECT_NE(a.first.find('/'), std::string::npos);
  server.stop();
}

TEST(FaultyTransport, NeverWedgesWhenTheServerVanishes) {
  net::ServerOptions so;
  auto server = std::make_unique<net::Server>(
      so, [](net::Server& s, std::vector<net::InboundFrame>&& batch) {
        for (const auto& f : batch) s.respond(f.conn, f.seq, okBuffer());
      });
  std::string error;
  ASSERT_TRUE(server->start(&error)) << error;
  FaultyTransportOptions to;
  to.port = server->port();
  to.maxAttempts = 3;
  to.recvTimeoutMs = 100.0;
  FaultyTransport transport(to, /*stream=*/4);
  EXPECT_TRUE(transport.roundTrip("{\"op\":\"noop\"}\n", 0).ok);
  server->stop();
  server.reset();
  const auto out = transport.roundTrip("{\"op\":\"noop\"}\n", 1);
  EXPECT_FALSE(out.ok);  // bounded attempts, no hang, no throw
  EXPECT_LE(out.attempts, 3);
}

}  // namespace
}  // namespace ep::chaos
