// Unit and property tests for epcore: strong/weak EP definitions, EP
// metrics, the Section III two-core theory, the n-core generalization,
// and the bi-objective tuner.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/definitions.hpp"
#include "core/metrics.hpp"
#include "core/ncore.hpp"
#include "core/tuner.hpp"
#include "core/twocore.hpp"
#include "core/watchdog.hpp"

namespace ep::core {
namespace {

pareto::BiPoint mk(double t, double e, std::uint64_t id = 0) {
  pareto::BiPoint p;
  p.time = Seconds{t};
  p.energy = Joules{e};
  p.configId = id;
  return p;
}

// --- strong EP ---

TEST(StrongEp, PerfectlyProportionalDataHolds) {
  std::vector<double> w, e;
  for (int i = 1; i <= 20; ++i) {
    w.push_back(i * 1e6);
    e.push_back(i * 3.0);
  }
  const auto r = analyzeStrongEp(w, e);
  EXPECT_TRUE(r.holds);
  EXPECT_NEAR(r.proportionalFit.slope, 3e-6, 1e-12);
  EXPECT_LT(r.maxRelativeDeviation, 1e-9);
}

TEST(StrongEp, NonlinearDataViolates) {
  std::vector<double> w, e;
  for (int i = 1; i <= 20; ++i) {
    w.push_back(i * 1e6);
    e.push_back(std::pow(static_cast<double>(i), 1.8));
  }
  const auto r = analyzeStrongEp(w, e);
  EXPECT_FALSE(r.holds);
  EXPECT_GT(r.maxRelativeDeviation, 0.05);
}

TEST(StrongEp, SmallDeviationWithinToleranceHolds) {
  std::vector<double> w{1e6, 2e6, 3e6};
  std::vector<double> e{1.0, 2.02, 2.98};
  const auto r = analyzeStrongEp(w, e, 0.05);
  EXPECT_TRUE(r.holds);
}

TEST(StrongEp, InputValidation) {
  std::vector<double> w{1.0, 2.0};
  std::vector<double> e{1.0, 2.0};
  EXPECT_THROW((void)analyzeStrongEp(w, e), PreconditionError);
}

// --- weak EP ---

TEST(WeakEp, ConstantEnergyHolds) {
  const std::vector<pareto::BiPoint> pts{mk(1, 100), mk(2, 100),
                                         mk(3, 100)};
  const auto r = analyzeWeakEp(pts);
  EXPECT_TRUE(r.holds);
  EXPECT_DOUBLE_EQ(r.spread, 0.0);
}

TEST(WeakEp, LargeSpreadViolates) {
  const std::vector<pareto::BiPoint> pts{mk(1, 100), mk(2, 150)};
  const auto r = analyzeWeakEp(pts);
  EXPECT_FALSE(r.holds);
  EXPECT_DOUBLE_EQ(r.spread, 0.5);
  EXPECT_DOUBLE_EQ(r.minEnergyJ, 100.0);
  EXPECT_DOUBLE_EQ(r.maxEnergyJ, 150.0);
}

TEST(WeakEp, SpreadWithinToleranceHolds) {
  const std::vector<pareto::BiPoint> pts{mk(1, 100), mk(2, 103)};
  EXPECT_TRUE(analyzeWeakEp(pts, 0.05).holds);
}

// --- metrics ---

TEST(Metrics, PerfectlyLinearCurveScoresOne) {
  std::vector<PowerSampleU> samples;
  for (int i = 1; i <= 10; ++i) {
    samples.push_back({i * 0.1, i * 10.0});
  }
  EXPECT_NEAR(ryckboschEpMetric(samples), 1.0, 1e-12);
  EXPECT_NEAR(maxLinearDeviation(samples), 0.0, 1e-12);
}

TEST(Metrics, CurveAboveIdealScoresBelowOne) {
  // Typical server: high power at low utilization.
  std::vector<PowerSampleU> samples;
  for (int i = 1; i <= 10; ++i) {
    const double u = i * 0.1;
    samples.push_back({u, 50.0 + 50.0 * u});  // P(1) = 100, P(0.1) = 55
  }
  const double ep = ryckboschEpMetric(samples);
  EXPECT_LT(ep, 1.0);
  EXPECT_GT(maxLinearDeviation(samples), 1.0);  // 55 vs ideal 10 at u=0.1
}

TEST(Metrics, ScatterZeroForFunctionalRelationship) {
  // With one point per bin, a functional relationship has exactly zero
  // residual; coarse bins only measure the within-bin slope.
  std::vector<PowerSampleU> samples;
  for (int i = 1; i <= 40; ++i) {
    samples.push_back({i * 0.025, i * 2.0});
  }
  const auto fine = analyzeScatter(samples, 40);
  EXPECT_NEAR(fine.maxResidual, 0.0, 1e-12);
  const auto coarse = analyzeScatter(samples, 8);
  EXPECT_GT(coarse.maxResidual, fine.maxResidual);
}

TEST(Metrics, ScatterLargeForNonFunctionalCloud) {
  // Two very different powers at the same utilizations (the Fig 4
  // phenomenon).
  std::vector<PowerSampleU> samples;
  for (int i = 1; i <= 20; ++i) {
    samples.push_back({0.5 + (i % 3) * 0.01, 60.0});
    samples.push_back({0.5 + (i % 3) * 0.01, 110.0});
  }
  samples.push_back({0.1, 20.0});
  samples.push_back({0.9, 120.0});
  const auto s = analyzeScatter(samples, 8);
  EXPECT_GT(s.maxResidual, 0.2);
}

TEST(Metrics, InputValidation) {
  std::vector<PowerSampleU> one{{0.5, 10.0}};
  EXPECT_THROW((void)ryckboschEpMetric(one), PreconditionError);
  std::vector<PowerSampleU> same{{0.5, 10.0}, {0.5, 12.0}};
  EXPECT_THROW((void)analyzeScatter(same, 4), PreconditionError);
}

// --- two-core theory (Section III equations) ---

TEST(TwoCore, Equation1BalancedEnergy) {
  const SimpleEpModel m{2.0, 3.0};
  const auto e = twoCoreEnergy(m, 0.5, 0.5);
  // E1 = 2 a b.
  EXPECT_DOUBLE_EQ(e.total, 2.0 * 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(e.core1, e.core2);
  EXPECT_DOUBLE_EQ(e.time, 3.0 / 0.5);
}

TEST(TwoCore, Equation2RaisingOneCore) {
  const SimpleEpModel m{1.0, 1.0};
  const auto s = paperScenarios(m, 0.5, 0.2);
  // E_d1,2 = a b (U+dU)/U; E_d2,2 = a b.
  EXPECT_DOUBLE_EQ(s.e2.core1, 0.7 / 0.5);
  EXPECT_DOUBLE_EQ(s.e2.core2, 1.0);
  EXPECT_GT(s.e2.total, s.e1.total);
}

TEST(TwoCore, Equation3OppositePerturbation) {
  const SimpleEpModel m{1.0, 1.0};
  const auto s = paperScenarios(m, 0.5, 0.2);
  // E_d1,3 = a b (U+dU)/(U-dU); E_d2,3 = a b.
  EXPECT_DOUBLE_EQ(s.e3.core1, 0.7 / 0.3);
  EXPECT_DOUBLE_EQ(s.e3.core2, 1.0);
  // Performance decreases: completion time grows.
  EXPECT_GT(s.e3.time, s.e1.time);
}

TEST(TwoCore, PaperTheoremOrderingHoldsForAllPerturbations) {
  // The Section III result: E3 > E2 > E1 for every 0 < dU < U.
  const SimpleEpModel m{1.7, 0.9};
  for (double u : {0.3, 0.5, 0.7}) {
    for (double du = 0.01; du < u && u + du <= 1.0; du += 0.02) {
      const auto s = paperScenarios(m, u, du);
      EXPECT_GT(s.e3.total, s.e2.total) << "u=" << u << " du=" << du;
      EXPECT_GT(s.e2.total, s.e1.total) << "u=" << u << " du=" << du;
    }
  }
}

TEST(TwoCore, InputValidation) {
  const SimpleEpModel m;
  EXPECT_THROW((void)twoCoreEnergy(m, 0.0, 0.5), PreconditionError);
  EXPECT_THROW((void)twoCoreEnergy(m, 0.5, 1.1), PreconditionError);
  EXPECT_THROW((void)paperScenarios(m, 0.5, 0.6), PreconditionError);
  EXPECT_THROW((void)paperScenarios(m, 0.9, 0.2), PreconditionError);
}

// --- n-core generalization ---

TEST(NCore, MatchesTwoCoreOnPairs) {
  const NCoreModel nm{1.0, 1.0, 1.0};
  const SimpleEpModel sm{1.0, 1.0};
  const std::vector<double> us{0.7, 0.3};
  const auto en = nCoreEnergy(nm, us);
  const auto e2 = twoCoreEnergy(sm, 0.7, 0.3);
  EXPECT_DOUBLE_EQ(en.total, e2.total);
  EXPECT_DOUBLE_EQ(en.time, e2.time);
}

TEST(NCore, UniformIsBaseline) {
  const NCoreModel m{2.0, 3.0, 1.0};
  const auto e = uniformEnergy(m, 8, 0.5);
  // 8 cores: P = 8 a U, t = b / U -> E = 8 a b.
  EXPECT_DOUBLE_EQ(e.total, 8.0 * 2.0 * 3.0);
}

TEST(NCoreProperty, ImbalancePenaltyNonNegativeLinearPower) {
  Rng rng(13);
  const NCoreModel m{1.0, 1.0, 1.0};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t cores = 2 + rng.uniformInt(0, 14);
    std::vector<double> us(cores);
    for (auto& u : us) u = rng.uniform(0.05, 1.0);
    EXPECT_GE(imbalancePenalty(m, us), -1e-12);
  }
}

TEST(NCoreProperty, ImbalancePenaltyNonNegativeConcavePower) {
  // The paper's future-work case: concave P(U) = a U^gamma still
  // penalizes imbalance because completion time is gated by the
  // slowest core (first-order) while the power saving is second-order.
  Rng rng(14);
  for (double gamma : {0.3, 0.5, 0.8, 1.0}) {
    const NCoreModel m{1.0, 1.0, gamma};
    for (int trial = 0; trial < 100; ++trial) {
      const std::size_t cores = 2 + rng.uniformInt(0, 10);
      std::vector<double> us(cores);
      for (auto& u : us) u = rng.uniform(0.05, 1.0);
      EXPECT_GE(imbalancePenalty(m, us), -1e-12) << "gamma=" << gamma;
    }
  }
}

TEST(NCore, BalancedVectorHasZeroPenalty) {
  const NCoreModel m{1.0, 1.0, 0.7};
  const std::vector<double> us(6, 0.42);
  EXPECT_NEAR(imbalancePenalty(m, us), 0.0, 1e-12);
}

TEST(NCore, InputValidation) {
  const NCoreModel bad{1.0, 1.0, 1.5};
  const std::vector<double> us{0.5};
  EXPECT_THROW((void)nCoreEnergy(bad, us), PreconditionError);
  const NCoreModel m;
  const std::vector<double> empty;
  EXPECT_THROW((void)nCoreEnergy(m, empty), PreconditionError);
}

// --- tuner ---

TEST(Tuner, RecommendsWithinBudget) {
  const std::vector<pareto::BiPoint> pts{
      mk(10.0, 100.0, 0), mk(10.5, 70.0, 1), mk(12.0, 40.0, 2),
      mk(20.0, 35.0, 3)};
  const BiObjectiveTuner tuner(0.25);
  const auto rec = tuner.recommend(pts);
  EXPECT_EQ(rec.performanceOptimal.configId, 0u);
  EXPECT_EQ(rec.energyOptimal.configId, 3u);
  EXPECT_EQ(rec.recommended.configId, 2u);  // 12.0 <= 12.5 budget
  EXPECT_NEAR(rec.energySavings, 0.6, 1e-12);
  EXPECT_NEAR(rec.performanceDegradation, 0.2, 1e-12);
}

TEST(Tuner, FallsBackToPerfOptimalWhenNoSavings) {
  const std::vector<pareto::BiPoint> pts{mk(1.0, 10.0, 0),
                                         mk(2.0, 20.0, 1)};
  const BiObjectiveTuner tuner(0.05);
  const auto rec = tuner.recommend(pts);
  EXPECT_EQ(rec.recommended.configId, 0u);
  EXPECT_DOUBLE_EQ(rec.energySavings, 0.0);
}

TEST(Tuner, GlobalFrontAndKneeExposed) {
  const std::vector<pareto::BiPoint> pts{mk(1, 5, 0), mk(2, 3, 1),
                                         mk(4, 1, 2), mk(5, 5, 3)};
  const BiObjectiveTuner tuner(1.0);
  const auto rec = tuner.recommend(pts);
  EXPECT_EQ(rec.globalFront.size(), 3u);  // (5,5) dominated
  EXPECT_EQ(rec.knee.configId, 1u);
}

TEST(Tuner, RejectsNegativeBudgetAndEmptyInput) {
  EXPECT_THROW(BiObjectiveTuner{-0.1}, PreconditionError);
  const BiObjectiveTuner tuner(0.1);
  EXPECT_THROW((void)tuner.recommend({}), PreconditionError);
}

// --- degenerate inputs (the recommend contract must stay total) ---

TEST(Tuner, SinglePointIsEveryOptimum) {
  const BiObjectiveTuner tuner(0.1);
  const auto rec = tuner.recommend({mk(3.0, 7.0, 42)});
  EXPECT_EQ(rec.performanceOptimal.configId, 42u);
  EXPECT_EQ(rec.energyOptimal.configId, 42u);
  EXPECT_EQ(rec.knee.configId, 42u);
  EXPECT_EQ(rec.recommended.configId, 42u);
  ASSERT_EQ(rec.globalFront.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.energySavings, 0.0);
  EXPECT_DOUBLE_EQ(rec.performanceDegradation, 0.0);
}

TEST(Tuner, SinglePointWithZeroObjectivesDoesNotThrow) {
  // A lone point cannot satisfy the trade-off analysis's positivity
  // requirement; recommend must still be total over it.
  const BiObjectiveTuner tuner(0.5);
  const auto rec = tuner.recommend({mk(0.0, 0.0, 7)});
  EXPECT_EQ(rec.recommended.configId, 7u);
  EXPECT_DOUBLE_EQ(rec.energySavings, 0.0);
}

TEST(Tuner, ZeroBudgetRecommendsPerformanceOptimal) {
  const std::vector<pareto::BiPoint> pts{
      mk(10.0, 100.0, 0), mk(10.5, 70.0, 1), mk(12.0, 40.0, 2)};
  const BiObjectiveTuner tuner(0.0);
  const auto rec = tuner.recommend(pts);
  EXPECT_EQ(rec.recommended.configId, 0u);
  EXPECT_DOUBLE_EQ(rec.energySavings, 0.0);
  EXPECT_DOUBLE_EQ(rec.performanceDegradation, 0.0);
}

TEST(Tuner, ZeroBudgetStillTakesTimeTiedCheaperPoint) {
  // Two configurations with identical time: the performance optimum
  // tie-breaks toward lower energy, so zero budget loses nothing.
  const std::vector<pareto::BiPoint> pts{
      mk(10.0, 100.0, 0), mk(10.0, 60.0, 1), mk(11.0, 50.0, 2)};
  const BiObjectiveTuner tuner(0.0);
  const auto rec = tuner.recommend(pts);
  EXPECT_EQ(rec.performanceOptimal.configId, 1u);
  EXPECT_EQ(rec.recommended.configId, 1u);
}

TEST(Tuner, AllIdenticalPointsAreWellDefined) {
  const std::vector<pareto::BiPoint> pts{mk(2.0, 4.0, 0), mk(2.0, 4.0, 1),
                                         mk(2.0, 4.0, 2)};
  const BiObjectiveTuner tuner(0.25);
  const auto rec = tuner.recommend(pts);
  EXPECT_DOUBLE_EQ(rec.energySavings, 0.0);
  EXPECT_DOUBLE_EQ(rec.performanceDegradation, 0.0);
  EXPECT_EQ(rec.recommended.time.value(), 2.0);
}

}  // namespace
}  // namespace ep::core

// --- per-level proportionality (appended Wong-Annavaram-style metric) ---

namespace ep::core {
namespace {

TEST(PerLevel, IdealCurveScoresOneEverywhere) {
  std::vector<PowerSampleU> samples;
  for (int i = 1; i <= 20; ++i) samples.push_back({i * 0.05, i * 5.0});
  for (const auto& lp : perLevelProportionality(samples, 5)) {
    EXPECT_NEAR(lp.proportionality, 1.0, 0.15);
  }
}

TEST(PerLevel, OverConsumingLowLoadScoresBelowOne) {
  // Server-like: half power at 10% load.
  std::vector<PowerSampleU> samples;
  for (int i = 1; i <= 10; ++i) {
    const double u = i * 0.1;
    samples.push_back({u, 50.0 + 50.0 * u});
  }
  const auto levels = perLevelProportionality(samples, 5);
  ASSERT_FALSE(levels.empty());
  // Proportionality is worst at low utilization and improves upward —
  // exactly the non-uniformity [6] reports.
  EXPECT_LT(levels.front().proportionality, 0.5);
  EXPECT_GT(levels.back().proportionality,
            levels.front().proportionality);
}

TEST(PerLevel, InputValidation) {
  std::vector<PowerSampleU> one{{0.5, 1.0}};
  EXPECT_THROW((void)perLevelProportionality(one, 4), PreconditionError);
}

}  // namespace
}  // namespace ep::core

// --- CPU EP study and server-fleet survey (appended extensions) ---

#include "core/cpu_study.hpp"
#include "core/serverpark.hpp"
#include "hw/cpu_model.hpp"

namespace ep::core {
namespace {

TEST(CpuStudy, ProducesCompleteWorkloadResult) {
  apps::CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuEpStudy study(
      apps::CpuDgemmApp(hw::CpuModel(hw::haswellE52670v3()), opts));
  Rng rng(1);
  const auto r = study.runWorkload(8192, hw::BlasVariant::IntelMklLike, rng);
  EXPECT_GT(r.points.size(), 50u);
  EXPECT_FALSE(r.globalFront.empty());
  EXPECT_FALSE(r.weakEp.holds);   // the paper's CPU result
  EXPECT_GT(r.weakEp.spread, 0.5);
  EXPECT_GT(r.peakGflops, 100.0);
  EXPECT_GT(r.powerScatter.maxResidual, 0.05);
  EXPECT_LT(r.ryckboschMetric, 1.0);
}

TEST(CpuStudy, VariantsDiffer) {
  apps::CpuDgemmOptions opts;
  opts.useMeter = false;
  const CpuEpStudy study(
      apps::CpuDgemmApp(hw::CpuModel(hw::haswellE52670v3()), opts));
  Rng rng(2);
  const auto mkl =
      study.runWorkload(17408, hw::BlasVariant::IntelMklLike, rng);
  const auto ob =
      study.runWorkload(17408, hw::BlasVariant::OpenBlasLike, rng);
  EXPECT_GT(mkl.peakGflops, ob.peakGflops);
}

TEST(ServerPark, CurveEndpointsAreIdleAndPeak) {
  const ServerPowerCurve s{"x", 400.0, 0.4, 1.2};
  EXPECT_DOUBLE_EQ(s.powerAt(0.0), 160.0);
  EXPECT_DOUBLE_EQ(s.powerAt(1.0), 400.0);
  EXPECT_THROW((void)s.powerAt(1.5), PreconditionError);
}

TEST(ServerPark, LadderHasElevenMonotoneSteps) {
  const ServerPowerCurve s{"x", 300.0, 0.3, 1.0};
  const auto ladder = specPowerLadder(s);
  ASSERT_EQ(ladder.size(), 11u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].powerW, ladder[i - 1].powerW);
    EXPECT_GT(ladder[i].utilization, ladder[i - 1].utilization);
  }
}

TEST(ServerPark, PerfectServerScoresNearOne) {
  // No idle floor, linear response: ideal EP.
  const ServerPowerCurve ideal{"ideal", 300.0, 0.0, 1.0};
  EXPECT_NEAR(ryckboschEpMetric(specPowerLadder(ideal)), 1.0, 1e-9);
}

TEST(ServerPark, HighIdleFloorScoresLow) {
  const ServerPowerCurve bad{"bad", 300.0, 0.65, 1.0};
  EXPECT_LT(ryckboschEpMetric(specPowerLadder(bad)), 0.6);
}

TEST(ServerPark, FleetSurveyIsDeterministicAndSane) {
  Rng rngA(210), rngB(210);
  const auto a = surveyFleet(generateFleet(210, rngA));
  const auto b = surveyFleet(generateFleet(210, rngB));
  EXPECT_EQ(a.servers, 210u);
  EXPECT_DOUBLE_EQ(a.meanEpMetric, b.meanEpMetric);
  EXPECT_LE(a.minEpMetric, a.meanEpMetric);
  EXPECT_LE(a.meanEpMetric, a.maxEpMetric);
  // Only a minority of servers is near-proportional ([5]).
  EXPECT_GT(a.nearlyProportionalCount, 0u);
  EXPECT_LT(a.nearlyProportionalCount, a.servers / 3);
}

TEST(ServerPark, RejectsMalformedInputs) {
  Rng rng(1);
  EXPECT_THROW((void)generateFleet(0, rng), PreconditionError);
  EXPECT_THROW((void)surveyFleet({}), PreconditionError);
  const ServerPowerCurve bad{"bad", -1.0, 0.3, 1.0};
  EXPECT_THROW((void)specPowerLadder(bad), PreconditionError);
}

// --- power-anomaly watchdog ---

// A window whose observed energy exceeds the model expectation by
// exactly `offsetW` watts — the signature of Fig 6's constant
// component, which sample sanitization and outlier rejection cannot
// see (a consistent shift passes both).
power::MeasureWindowObservation offsetWindow(double offsetW,
                                             double windowS = 2.0) {
  power::MeasureWindowObservation o;
  o.scope = "P100";
  o.windowS = windowS;
  o.staticJ = 50.0 * windowS;
  o.expectedJ = (50.0 + 80.0) * windowS;  // base + workload
  o.observedJ = o.expectedJ + offsetW * windowS;
  o.traceId = 0xBEEFu;
  return o;
}

TEST(Watchdog, RaisesConstantComponentAtTheRollingMedian) {
  WatchdogOptions opts;
  opts.constantComponentWatts = 25.0;
  opts.rollingWindows = 8;
  opts.minWindows = 4;
  PowerAnomalyWatchdog wd(opts);

  // Below minWindows nothing can fire, however large the residual.
  wd.onMeasureWindow(offsetWindow(58.0));
  wd.onMeasureWindow(offsetWindow(58.0));
  wd.onMeasureWindow(offsetWindow(58.0));
  EXPECT_EQ(wd.activeAlerts(), 0u);

  // The fourth window completes the median: one event, raised once.
  wd.onMeasureWindow(offsetWindow(58.0));
  EXPECT_EQ(wd.activeAlerts(), 1u);
  wd.onMeasureWindow(offsetWindow(58.0));
  EXPECT_EQ(wd.activeAlerts(), 1u);  // no re-raise while active

  const auto events = wd.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].kind, "constant_component");
  EXPECT_STREQ(events[0].scope, "P100");
  EXPECT_NEAR(events[0].value, 58.0, 1e-9);
  EXPECT_DOUBLE_EQ(events[0].threshold, 25.0);
  EXPECT_EQ(events[0].traceId, 0xBEEFu);
}

TEST(Watchdog, ConstantComponentClearsWithHysteresis) {
  WatchdogOptions opts;
  opts.constantComponentWatts = 25.0;
  opts.rollingWindows = 4;
  opts.minWindows = 4;
  opts.clearFraction = 0.5;
  PowerAnomalyWatchdog wd(opts);
  for (int i = 0; i < 4; ++i) wd.onMeasureWindow(offsetWindow(58.0));
  ASSERT_EQ(wd.activeAlerts(), 1u);

  // Dropping below the threshold is not enough — only below
  // threshold * clearFraction (12.5 W) does the alert clear.
  for (int i = 0; i < 4; ++i) wd.onMeasureWindow(offsetWindow(20.0));
  EXPECT_EQ(wd.activeAlerts(), 1u);
  for (int i = 0; i < 4; ++i) wd.onMeasureWindow(offsetWindow(1.0));
  EXPECT_EQ(wd.activeAlerts(), 0u);

  const auto events = wd.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "constant_component");
  EXPECT_STREQ(events[1].kind, "cleared");
}

TEST(Watchdog, ScopesTrackAnomaliesIndependently) {
  WatchdogOptions opts;
  opts.minWindows = 4;
  opts.rollingWindows = 4;
  PowerAnomalyWatchdog wd(opts);
  for (int i = 0; i < 4; ++i) {
    auto healthy = offsetWindow(0.0);
    healthy.scope = "K40c";
    wd.onMeasureWindow(healthy);
    wd.onMeasureWindow(offsetWindow(58.0));  // P100
  }
  EXPECT_EQ(wd.activeAlerts(), 1u);
  const auto events = wd.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].scope, "P100");
}

TEST(Watchdog, CiDegradationRaisesAndConvergenceClears) {
  WatchdogOptions opts;
  opts.ciPrecisionLimit = 0.10;
  PowerAnomalyWatchdog wd(opts);

  wd.onMeasurementResult("P100", /*converged=*/false, /*precision=*/0.35);
  EXPECT_EQ(wd.activeAlerts(), 1u);
  wd.onMeasurementResult("P100", false, 0.4);  // still active: no re-raise
  EXPECT_EQ(wd.activeAlerts(), 1u);
  // Non-convergence within the limit is not an anomaly.
  wd.onMeasurementResult("K40c", false, 0.05);
  EXPECT_EQ(wd.activeAlerts(), 1u);

  wd.onMeasurementResult("P100", /*converged=*/true, 0.02);
  EXPECT_EQ(wd.activeAlerts(), 0u);
  const auto events = wd.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "ci_degraded");
  EXPECT_DOUBLE_EQ(events[0].value, 0.35);
  EXPECT_STREQ(events[1].kind, "cleared");
}

TEST(Watchdog, ErrorBudgetBurnsAndRecovers) {
  WatchdogOptions opts;
  opts.errorBudget = 0.25;
  opts.requestWindow = 8;
  opts.minRequests = 4;
  opts.clearFraction = 0.5;
  PowerAnomalyWatchdog wd(opts);

  // 2 errors in 4 = 50 % > 25 %: raised (stale counts like error).
  wd.observeRequestOutcome("P100", false, false);
  wd.observeRequestOutcome("P100", true, false);
  wd.observeRequestOutcome("P100", false, true);
  EXPECT_EQ(wd.activeAlerts(), 0u);  // below minRequests
  wd.observeRequestOutcome("P100", false, false);
  EXPECT_EQ(wd.activeAlerts(), 1u);

  // Healthy traffic pushes the bad outcomes out of the window; the
  // alert clears once the rate falls to <= budget * clearFraction.
  for (int i = 0; i < 8; ++i) {
    wd.observeRequestOutcome("P100", false, false);
  }
  EXPECT_EQ(wd.activeAlerts(), 0u);
  const auto events = wd.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "error_budget");
  EXPECT_DOUBLE_EQ(events[0].value, 0.5);
  EXPECT_DOUBLE_EQ(events[0].threshold, 0.25);
  EXPECT_STREQ(events[1].kind, "cleared");
}

TEST(Watchdog, EventsDrainIncrementallyBySequence) {
  WatchdogOptions opts;
  opts.minWindows = 4;
  opts.rollingWindows = 4;
  opts.clearFraction = 0.5;
  PowerAnomalyWatchdog wd(opts);
  for (int i = 0; i < 4; ++i) wd.onMeasureWindow(offsetWindow(58.0));
  const auto first = wd.events();
  ASSERT_EQ(first.size(), 1u);

  for (int i = 0; i < 4; ++i) wd.onMeasureWindow(offsetWindow(0.0));
  // Tailing from the last seen seq yields only the clear event.
  const auto tail = wd.events(first.back().seq);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_STREQ(tail[0].kind, "cleared");
  EXPECT_TRUE(wd.events(tail.back().seq).empty());
}

}  // namespace
}  // namespace ep::core
