// Tests for eppartition: discrete profiles and the exact bi-objective
// workload-distribution DP solver ([25]/[12]-style baseline).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pareto/front.hpp"
#include "partition/partitioner.hpp"
#include "partition/profile.hpp"

namespace ep::partition {
namespace {

// A linear processor: time = a*k, energy = b*k.
DiscreteProfile linearProfile(const std::string& name, std::size_t maxUnits,
                              double a, double b) {
  return DiscreteProfile::sample(
      name, maxUnits,
      [a](std::size_t k) { return Seconds{a * static_cast<double>(k)}; },
      [b](std::size_t k) { return Joules{b * static_cast<double>(k)}; });
}

// --- profile ---

TEST(Profile, SampleAndLookup) {
  const auto p = linearProfile("cpu", 10, 2.0, 3.0);
  EXPECT_EQ(p.maxUnits(), 10u);
  EXPECT_DOUBLE_EQ(p.timeFor(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(p.energyFor(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(p.timeFor(4).value(), 8.0);
  EXPECT_DOUBLE_EQ(p.energyFor(4).value(), 12.0);
}

TEST(Profile, RejectsOutOfRange) {
  const auto p = linearProfile("cpu", 5, 1.0, 1.0);
  EXPECT_THROW((void)p.timeFor(6), PreconditionError);
  EXPECT_THROW((void)p.energyFor(6), PreconditionError);
}

TEST(Profile, RejectsMalformedTables) {
  // Non-zero cost at zero work.
  EXPECT_THROW(DiscreteProfile("x", {Seconds{1.0}, Seconds{2.0}},
                               {Joules{0.0}, Joules{1.0}}),
               PreconditionError);
  // Misaligned tables.
  EXPECT_THROW(DiscreteProfile("x", {Seconds{0.0}, Seconds{1.0}},
                               {Joules{0.0}}),
               PreconditionError);
  // Zero time for positive work.
  EXPECT_THROW(DiscreteProfile("x", {Seconds{0.0}, Seconds{0.0}},
                               {Joules{0.0}, Joules{1.0}}),
               PreconditionError);
}

// --- partitioner on analytically solvable cases ---

TEST(Partitioner, SingleProcessorIsTrivial) {
  const WorkloadPartitioner part({linearProfile("p", 10, 1.0, 2.0)});
  const auto front = part.paretoDistributions(7);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].parts, (std::vector<std::size_t>{7}));
  EXPECT_DOUBLE_EQ(front[0].time.value(), 7.0);
  EXPECT_DOUBLE_EQ(front[0].energy.value(), 14.0);
}

TEST(Partitioner, IdenticalLinearProcessorsBalance) {
  // Two identical linear processors: the even split minimizes time; its
  // energy equals every other split's (energies are linear), so the
  // front collapses to the minimum-time point.
  const WorkloadPartitioner part({linearProfile("a", 10, 1.0, 1.0),
                                  linearProfile("b", 10, 1.0, 1.0)});
  const auto front = part.paretoDistributions(10);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].time.value(), 5.0);
  EXPECT_DOUBLE_EQ(front[0].energy.value(), 10.0);
}

TEST(Partitioner, FastExpensiveVsSlowCheapGivesRealFront) {
  // Processor A: fast but power hungry; B: slow but cheap.  Shifting
  // work from A to B trades time for energy -> a multi-point front.
  const WorkloadPartitioner part({linearProfile("fast", 20, 1.0, 10.0),
                                  linearProfile("cheap", 20, 4.0, 1.0)});
  const auto front = part.paretoDistributions(12);
  EXPECT_GT(front.size(), 2u);
  // Extremes: fastest uses both (balanced by speed), cheapest pushes
  // everything to the cheap processor.
  const auto fastest = part.fastest(12);
  const auto efficient = part.mostEfficient(12);
  EXPECT_LT(fastest.time, efficient.time);
  EXPECT_GT(fastest.energy, efficient.energy);
  EXPECT_EQ(efficient.parts, (std::vector<std::size_t>{0, 12}));
}

TEST(Partitioner, FrontIsSortedAndMutuallyNonDominating) {
  const WorkloadPartitioner part({linearProfile("a", 15, 1.0, 7.0),
                                  linearProfile("b", 15, 2.0, 3.0),
                                  linearProfile("c", 15, 3.0, 1.0)});
  const auto front = part.paretoDistributions(20);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].time.value(), front[i - 1].time.value());
    EXPECT_LT(front[i].energy.value(), front[i - 1].energy.value());
  }
}

TEST(Partitioner, PartsAlwaysSumToWorkload) {
  Rng rng(4);
  std::vector<DiscreteProfile> profiles;
  for (int p = 0; p < 3; ++p) {
    profiles.push_back(DiscreteProfile::sample(
        "p" + std::to_string(p), 12,
        [&rng](std::size_t k) {
          return Seconds{static_cast<double>(k) * 1.0 +
                         rng.uniform(0.0, 0.5)};
        },
        [&rng](std::size_t k) {
          return Joules{static_cast<double>(k) * 2.0 +
                        rng.uniform(0.0, 1.0)};
        }));
  }
  const WorkloadPartitioner part(profiles);
  for (std::size_t w : {1u, 5u, 17u, 36u}) {
    for (const auto& d : part.paretoDistributions(w)) {
      std::size_t sum = 0;
      for (auto x : d.parts) sum += x;
      EXPECT_EQ(sum, w);
    }
  }
}

TEST(Partitioner, ObjectivesMatchRecomputationFromParts) {
  const std::vector<DiscreteProfile> profiles{
      linearProfile("a", 10, 1.3, 4.0), linearProfile("b", 10, 2.1, 2.0)};
  const WorkloadPartitioner part(profiles);
  for (const auto& d : part.paretoDistributions(9)) {
    Seconds t{0.0};
    Joules e{0.0};
    for (std::size_t i = 0; i < d.parts.size(); ++i) {
      t = std::max(t, profiles[i].timeFor(d.parts[i]));
      e += profiles[i].energyFor(d.parts[i]);
    }
    EXPECT_DOUBLE_EQ(d.time.value(), t.value());
    EXPECT_DOUBLE_EQ(d.energy.value(), e.value());
  }
}

// Property: the DP front matches brute-force enumeration for small
// instances.
TEST(PartitionerProperty, MatchesBruteForceOnSmallInstances) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<DiscreteProfile> profiles;
    for (int p = 0; p < 2; ++p) {
      std::vector<Seconds> times{Seconds{0.0}};
      std::vector<Joules> energies{Joules{0.0}};
      for (int k = 1; k <= 8; ++k) {
        times.push_back(Seconds{rng.uniform(0.5, 10.0)});
        energies.push_back(Joules{rng.uniform(0.5, 10.0)});
      }
      profiles.emplace_back("p" + std::to_string(p), times, energies);
    }
    const WorkloadPartitioner part(profiles);
    const std::size_t w = 8;
    const auto front = part.paretoDistributions(w);

    // Brute force all (x, w-x).
    std::vector<pareto::BiPoint> all;
    for (std::size_t x = 0; x <= w; ++x) {
      pareto::BiPoint pt;
      pt.time = std::max(profiles[0].timeFor(x), profiles[1].timeFor(w - x));
      pt.energy = profiles[0].energyFor(x) + profiles[1].energyFor(w - x);
      pt.configId = x;
      all.push_back(pt);
    }
    const auto expected = pareto::paretoFront(all);
    // Same objective sets (duplicates collapse in the DP).
    ASSERT_LE(front.size(), expected.size());
    for (const auto& d : front) {
      const bool found = std::any_of(
          expected.begin(), expected.end(), [&](const pareto::BiPoint& p) {
            return std::fabs(p.time.value() - d.time.value()) < 1e-12 &&
                   std::fabs(p.energy.value() - d.energy.value()) < 1e-12;
          });
      EXPECT_TRUE(found);
    }
    // And no expected objective pair is missing from the DP front.
    for (const auto& p : expected) {
      const bool found = std::any_of(
          front.begin(), front.end(), [&](const Distribution& d) {
            return std::fabs(p.time.value() - d.time.value()) < 1e-12 &&
                   std::fabs(p.energy.value() - d.energy.value()) < 1e-12;
          });
      EXPECT_TRUE(found);
    }
  }
}

TEST(Partitioner, BalancedBaselineIsFeasibleButUsuallyDominated) {
  const WorkloadPartitioner part({linearProfile("fast", 20, 1.0, 10.0),
                                  linearProfile("cheap", 20, 4.0, 1.0)});
  const auto bal = part.balanced(12);
  std::size_t sum = 0;
  for (auto x : bal.parts) sum += x;
  EXPECT_EQ(sum, 12u);
  // The even split ignores heterogeneity: the bi-objective fastest
  // distribution beats it on time.
  EXPECT_LT(part.fastest(12).time.value(), bal.time.value() + 1e-12);
}

TEST(Partitioner, RejectsInfeasibleWorkloads) {
  const WorkloadPartitioner part({linearProfile("a", 4, 1.0, 1.0)});
  EXPECT_THROW((void)part.paretoDistributions(5), PreconditionError);
  EXPECT_THROW((void)part.paretoDistributions(0), PreconditionError);
  EXPECT_THROW(WorkloadPartitioner({}), PreconditionError);
}

TEST(Partitioner, DescribeNamesProcessors) {
  const std::vector<DiscreteProfile> profiles{
      linearProfile("cpu", 5, 1.0, 1.0), linearProfile("gpu", 5, 1.0, 1.0)};
  const WorkloadPartitioner part(profiles);
  const auto d = part.fastest(4);
  const std::string s = d.describe(profiles);
  EXPECT_NE(s.find("cpu:"), std::string::npos);
  EXPECT_NE(s.find("gpu:"), std::string::npos);
}

}  // namespace
}  // namespace ep::partition
