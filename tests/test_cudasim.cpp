// Unit tests for cusim: device memory accounting, events, the
// functional block executor, and CUPTI-like counters.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"
#include "cudasim/cupti.hpp"
#include "cudasim/device.hpp"
#include "cudasim/executor.hpp"
#include "hw/spec.hpp"

namespace ep::cusim {
namespace {

Device makeDevice() { return Device(hw::nvidiaK40c()); }

// --- device & memory ---

TEST(Device, MemoryCapacityMatchesSpec) {
  Device d = makeDevice();
  EXPECT_EQ(d.memoryCapacityBytes(), 12ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(d.memoryUsedBytes(), 0u);
}

TEST(Device, BufferTracksUsage) {
  Device d = makeDevice();
  {
    DeviceBuffer<double> buf(d, 1000);
    EXPECT_EQ(d.memoryUsedBytes(), 8000u);
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(buf.bytes(), 8000u);
  }
  EXPECT_EQ(d.memoryUsedBytes(), 0u);  // RAII release
}

TEST(Device, AllocationBeyondCapacityThrows) {
  Device d = makeDevice();
  const std::size_t tooMany = d.memoryCapacityBytes() / sizeof(double) + 1;
  EXPECT_THROW(DeviceBuffer<double>(d, tooMany), ResourceError);
}

TEST(Device, ExhaustionAcrossMultipleBuffers) {
  Device d = makeDevice();
  const std::size_t half = d.memoryCapacityBytes() / sizeof(double) / 2;
  DeviceBuffer<double> a(d, half);
  DeviceBuffer<double> b(d, half);
  EXPECT_THROW(DeviceBuffer<double>(d, 1024), ResourceError);
}

TEST(Device, MoveTransfersOwnership) {
  Device d = makeDevice();
  DeviceBuffer<double> a(d, 100);
  DeviceBuffer<double> b(std::move(a));
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(d.memoryUsedBytes(), 800u);
}

TEST(Device, BufferElementsReadWrite) {
  Device d = makeDevice();
  DeviceBuffer<int> buf(d, 10);
  for (std::size_t i = 0; i < 10; ++i) buf[i] = static_cast<int>(i * i);
  EXPECT_EQ(buf[3], 9);
  EXPECT_EQ(buf[9], 81);
}

// --- events & clock ---

TEST(Events, ElapsedMeasuresClockAdvance) {
  Device d = makeDevice();
  Event start, stop;
  d.record(start);
  d.advanceClock(Seconds{2.5});
  d.record(stop);
  EXPECT_DOUBLE_EQ(Device::elapsed(start, stop).value(), 2.5);
}

TEST(Events, UnrecordedEventThrows) {
  Event e;
  EXPECT_FALSE(e.recorded());
  EXPECT_THROW((void)e.timestamp(), PreconditionError);
}

TEST(Events, ReversedEventsThrow) {
  Device d = makeDevice();
  Event start, stop;
  d.record(stop);
  d.advanceClock(Seconds{1.0});
  d.record(start);
  EXPECT_THROW((void)Device::elapsed(start, stop), PreconditionError);
}

TEST(Events, ClockCannotRunBackwards) {
  Device d = makeDevice();
  EXPECT_THROW(d.advanceClock(Seconds{-1.0}), PreconditionError);
}

// --- executor ---

TEST(Executor, VisitsEveryBlockAndThreadOnce) {
  Device d = makeDevice();
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {3, 2, 1};
  cfg.block = {4, 4, 1};
  std::atomic<int> threads{0};
  exec.launch(d, cfg, [&](BlockContext& ctx) {
    ctx.forEachThread([&](Dim3) { threads.fetch_add(1); });
  });
  EXPECT_EQ(threads.load(), 3 * 2 * 4 * 4);
}

TEST(Executor, BlockIndicesCoverGrid) {
  Device d = makeDevice();
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {4, 3, 1};
  cfg.block = {1, 1, 1};
  std::vector<std::atomic<int>> seen(12);
  exec.launch(d, cfg, [&](BlockContext& ctx) {
    seen[ctx.blockIdx().y * 4 + ctx.blockIdx().x].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Executor, PhasesActAsBarriers) {
  // Phase 1 writes shared memory; phase 2 reads values written by OTHER
  // threads — only correct if phase 1 completed for all threads.
  Device d = makeDevice();
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {16, 1, 1};
  cfg.sharedBytes = 16 * sizeof(int);
  bool ok = true;
  exec.launch(d, cfg, [&](BlockContext& ctx) {
    auto shared = ctx.shared<int>(16);
    ctx.forEachThread(
        [&](Dim3 t) { shared[t.x] = static_cast<int>(t.x) * 10; });
    ctx.forEachThread([&](Dim3 t) {
      const unsigned other = (t.x + 5) % 16;
      if (shared[other] != static_cast<int>(other) * 10) ok = false;
    });
  });
  EXPECT_TRUE(ok);
}

TEST(Executor, SharedArenaExhaustionThrows) {
  Device d = makeDevice();
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  cfg.sharedBytes = 16;
  EXPECT_THROW(
      exec.launch(d, cfg,
                  [&](BlockContext& ctx) { (void)ctx.shared<double>(100); }),
      ResourceError);
}

TEST(Executor, RejectsOversizedBlocks) {
  Device d = makeDevice();  // max 1024 threads/block
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {33, 32, 1};  // 1056 threads
  EXPECT_THROW(exec.launch(d, cfg, [](BlockContext&) {}), ResourceError);
}

TEST(Executor, RejectsOversizedSharedMemory) {
  Device d = makeDevice();  // 48 KB per block
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  cfg.sharedBytes = 49 * 1024;
  EXPECT_THROW(exec.launch(d, cfg, [](BlockContext&) {}), ResourceError);
}

TEST(Executor, RejectsEmptyLaunch) {
  Device d = makeDevice();
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {0, 1, 1};
  cfg.block = {1, 1, 1};
  EXPECT_THROW(exec.launch(d, cfg, [](BlockContext&) {}),
               PreconditionError);
}

TEST(Executor, ParallelPoolMatchesSequential) {
  Device d = makeDevice();
  LaunchConfig cfg;
  cfg.grid = {8, 8, 1};
  cfg.block = {8, 8, 1};
  auto run = [&](Executor& exec) {
    std::atomic<long> sum{0};
    exec.launch(d, cfg, [&](BlockContext& ctx) {
      ctx.forEachThread([&](Dim3 t) {
        sum.fetch_add(static_cast<long>(ctx.blockIdx().x + t.y));
      });
    });
    return sum.load();
  };
  Executor seq;
  ThreadPool pool(4);
  Executor par(&pool);
  EXPECT_EQ(run(seq), run(par));
}

TEST(Executor, FlatThreadIndexIsRowMajor) {
  Device d = makeDevice();
  const Executor exec;
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {4, 3, 1};
  std::vector<int> order;
  exec.launch(d, cfg, [&](BlockContext& ctx) {
    ctx.forEachThread([&](Dim3 t) {
      order.push_back(static_cast<int>(ctx.flatThread(t)));
    });
  });
  std::vector<int> expected(12);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

// --- CUPTI counters ---

TEST(Cupti, AccumulatesAndResets) {
  CuptiCounters c;
  c.add(CuptiEvent::kFlopCountDp, 100);
  c.add(CuptiEvent::kFlopCountDp, 23);
  EXPECT_EQ(c.trueValue(CuptiEvent::kFlopCountDp), 123u);
  c.reset();
  EXPECT_EQ(c.trueValue(CuptiEvent::kFlopCountDp), 0u);
}

TEST(Cupti, SmallCountsReadExactly) {
  CuptiCounters c;
  c.add(CuptiEvent::kFlopCountDp, 1000);
  EXPECT_EQ(c.read(CuptiEvent::kFlopCountDp), 1000u);
  EXPECT_FALSE(c.overflowed(CuptiEvent::kFlopCountDp));
}

TEST(Cupti, HardwareCountersWrapAt32Bits) {
  // The paper: "many key events and metrics overflow for large matrix
  // sizes (N > 2048)".  2 N^3 flops at N=2048 is 1.7e10 > 2^32.
  CuptiCounters c;
  const std::uint64_t flops = 2ULL * 2048 * 2048 * 2048;
  c.add(CuptiEvent::kFlopCountDp, flops);
  EXPECT_TRUE(c.overflowed(CuptiEvent::kFlopCountDp));
  EXPECT_EQ(c.read(CuptiEvent::kFlopCountDp), flops & 0xFFFFFFFFULL);
  EXPECT_EQ(c.trueValue(CuptiEvent::kFlopCountDp), flops);
}

TEST(Cupti, DriverAccumulatedEventsDoNotWrap) {
  CuptiCounters c;
  const std::uint64_t big = 1ULL << 40;
  c.add(CuptiEvent::kDramBytes, big);
  c.add(CuptiEvent::kElapsedCycles, big);
  EXPECT_FALSE(c.overflowed(CuptiEvent::kDramBytes));
  EXPECT_FALSE(c.overflowed(CuptiEvent::kElapsedCycles));
  EXPECT_EQ(c.read(CuptiEvent::kDramBytes), big);
}

TEST(Cupti, EventNamesAreStable) {
  EXPECT_EQ(cuptiEventName(CuptiEvent::kFlopCountDp), "flop_count_dp");
  EXPECT_EQ(cuptiEventName(CuptiEvent::kDramBytes), "dram_bytes");
  EXPECT_EQ(cuptiEventName(CuptiEvent::kSharedLoadStore),
            "shared_load_store");
  EXPECT_EQ(cuptiEventName(CuptiEvent::kGldTransactions),
            "gld_transactions");
  EXPECT_EQ(cuptiEventName(CuptiEvent::kElapsedCycles), "elapsed_cycles");
}

TEST(Cupti, PlusEqualsMergesAllEvents) {
  CuptiCounters a, b;
  a.add(CuptiEvent::kFlopCountDp, 10);
  b.add(CuptiEvent::kFlopCountDp, 32);
  b.add(CuptiEvent::kDramBytes, 7);
  a += b;
  EXPECT_EQ(a.trueValue(CuptiEvent::kFlopCountDp), 42u);
  EXPECT_EQ(a.trueValue(CuptiEvent::kDramBytes), 7u);
}

}  // namespace
}  // namespace ep::cusim
